open Scs_spec

let check_one_shot ops =
  let winners =
    List.filter
      (fun (o : _ Trace.operation) ->
        match o.Trace.outcome with
        | Trace.Committed { resp = Objects.Winner; _ } -> true
        | _ -> false)
      ops
  in
  let losers =
    List.filter
      (fun (o : _ Trace.operation) ->
        match o.Trace.outcome with
        | Trace.Committed { resp = Objects.Loser; _ } -> true
        | _ -> false)
      ops
  in
  let incomplete =
    List.filter
      (fun (o : _ Trace.operation) ->
        match o.Trace.outcome with Trace.Aborted _ | Trace.Pending -> true | _ -> false)
      ops
  in
  match winners with
  | _ :: _ :: _ -> false
  | _ -> (
      match losers with
      | [] -> true
      | _ ->
          let first_loser_resp =
            List.fold_left
              (fun acc (o : _ Trace.operation) ->
                match o.Trace.outcome with
                | Trace.Committed { resp_seq; _ } -> min acc resp_seq
                | _ -> acc)
              max_int losers
          in
          let can_win (o : _ Trace.operation) = o.Trace.invoke_seq < first_loser_resp in
          (match winners with
          | [ w ] -> can_win w
          | [] -> List.exists can_win incomplete
          | _ -> false))

let check_long_lived ~rounds = List.for_all check_one_shot rounds
