(** High-level operation traces.

    A trace is the real-time sequence of invocation, init, commit and abort
    events observed at the boundary of an implementation (Section 3 of the
    paper). Events carry two notions of time:
    - their position in the trace ([seq], assigned by the recorder), which
      defines the real-time precedence order used by the linearizability
      and Abstract checkers, and
    - the simulator's memory-step clock ([ts]), used by the contention
      detectors.

    ['v] is the type of switch values. *)

open Scs_spec

type ('i, 'r, 'v) event =
  | Invoke of { seq : int; ts : int; pid : int; req : 'i Request.t }
  | Init of { seq : int; ts : int; pid : int; req : 'i Request.t; switch : 'v }
      (** an invocation carrying a switch value for module initialisation *)
  | Commit of { seq : int; ts : int; pid : int; req : 'i Request.t; resp : 'r }
  | Abort of { seq : int; ts : int; pid : int; req : 'i Request.t; switch : 'v }

val event_seq : ('i, 'r, 'v) event -> int
val event_pid : ('i, 'r, 'v) event -> int
val event_req : ('i, 'r, 'v) event -> 'i Request.t

(** {1 Recording} *)

type ('i, 'r, 'v) t

val create : ?clock:(unit -> int) -> unit -> ('i, 'r, 'v) t
(** [clock] supplies the logical timestamp of each event (default: the
    event's own sequence number). *)

val invoke : ('i, 'r, 'v) t -> pid:int -> 'i Request.t -> unit
val init : ('i, 'r, 'v) t -> pid:int -> 'i Request.t -> 'v -> unit
val commit : ('i, 'r, 'v) t -> pid:int -> 'i Request.t -> 'r -> unit
val abort : ('i, 'r, 'v) t -> pid:int -> 'i Request.t -> 'v -> unit
val events : ('i, 'r, 'v) t -> ('i, 'r, 'v) event array
val length : ('i, 'r, 'v) t -> int

(** {1 Derived operation view} *)

type ('i, 'r, 'v) operation = {
  op_pid : int;
  op_req : 'i Request.t;
  invoke_seq : int;
  invoke_ts : int;
  op_init : 'v option;  (** switch value if invoked via [init] *)
  outcome : ('i, 'r, 'v) outcome;
}

and ('i, 'r, 'v) outcome =
  | Committed of { resp : 'r; resp_seq : int; resp_ts : int }
  | Aborted of { switch : 'v; resp_seq : int; resp_ts : int }
  | Pending  (** invoked, never responded (e.g. crashed) *)

val operations : ('i, 'r, 'v) event array -> ('i, 'r, 'v) operation list
(** Pair invocations with their responses (matched by request id). Raises
    [Invalid_argument] on malformed traces (response without invocation,
    duplicate invocation of one request id, ...). *)

val committed : ('i, 'r, 'v) operation list -> ('i, 'r, 'v) operation list
val aborted : ('i, 'r, 'v) operation list -> ('i, 'r, 'v) operation list
val pending : ('i, 'r, 'v) operation list -> ('i, 'r, 'v) operation list
