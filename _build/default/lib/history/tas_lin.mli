(** Specialised linearizability checking for test-and-set traces.

    For one-shot TAS the Herlihy–Wing condition collapses to a closed form
    (cf. the invariants in the proof of Lemma 4):
    - at most one operation commits winner;
    - if some operation commits loser, an operation that can be linearized
      as the winner (the committed winner, or a pending/aborted operation)
      must have been invoked before the first loser committed.

    This runs in O(m) and is cross-validated against the generic checker by
    property tests. *)

open Scs_spec

val check_one_shot : (Objects.tas_req, Objects.tas_resp, 'v) Trace.operation list -> bool

val check_long_lived :
  rounds:(Objects.tas_req, Objects.tas_resp, 'v) Trace.operation list list -> bool
(** The long-lived object of Algorithm 2 linearizes round by round
    (Theorem 4): each element of [rounds] holds the operations of one
    [TAS[i]] instance, and the whole trace is linearizable iff every round
    is. Round boundaries are established by the atomic [Count] register, so
    cross-round real-time order is respected by construction. *)
