open Scs_spec

type 'i event =
  | Invoke of { seq : int; pid : int; req : 'i Request.t }
  | Init of { seq : int; pid : int; req : 'i Request.t; hist : 'i History.t }
  | Commit of { seq : int; pid : int; req : 'i Request.t; hist : 'i History.t }
  | Abort of { seq : int; pid : int; req : 'i Request.t; hist : 'i History.t }

let ( let* ) r f = match r with Ok x -> f x | Error _ as e -> e

let fail fmt = Printf.ksprintf (fun s -> Error s) fmt

let commit_hists evs =
  List.filter_map (function Commit { hist; _ } -> Some hist | _ -> None) evs

let abort_hists evs = List.filter_map (function Abort { hist; _ } -> Some hist | _ -> None) evs
let init_hists evs = List.filter_map (function Init { hist; _ } -> Some hist | _ -> None) evs

let check_commit_order evs =
  let rec pairs = function
    | [] -> Ok ()
    | h :: rest ->
        let bad =
          List.exists (fun h' -> not (History.is_prefix h h' || History.is_prefix h' h)) rest
        in
        if bad then fail "Commit Order: two commit histories are not prefix-ordered"
        else pairs rest
  in
  pairs (commit_hists evs)

let check_abort_ordering evs =
  let commits = commit_hists evs in
  let aborts = abort_hists evs in
  if
    List.for_all (fun c -> List.for_all (fun a -> History.is_prefix c a) aborts) commits
  then Ok ()
  else fail "Abort Ordering: some commit history is not a prefix of some abort history"

(* The seq at which each request id becomes "invoked": its own Invoke/Init
   event, or the first init event whose history carries it. *)
let invocation_seqs evs =
  let tbl = Hashtbl.create 32 in
  let note id seq =
    match Hashtbl.find_opt tbl id with
    | Some s when s <= seq -> ()
    | _ -> Hashtbl.replace tbl id seq
  in
  List.iter
    (fun ev ->
      match ev with
      | Invoke { seq; req; _ } -> note (Request.id req) seq
      | Init { seq; req; hist; _ } ->
          note (Request.id req) seq;
          List.iter (fun r -> note (Request.id r) seq) hist
      | Commit _ | Abort _ -> ())
    evs;
  tbl

type validity_timing = Per_index | Global

let check_validity ~validity evs =
  let invoked = invocation_seqs evs in
  let check_hist ~kind ~seq ~req hist =
    let* () =
      if History.no_dups hist then Ok ()
      else fail "Validity: duplicate request in a %s history (seq %d)" kind seq
    in
    let* () =
      if History.mem (Request.id req) hist then Ok ()
      else fail "Validity: %s history at seq %d does not contain its own request" kind seq
    in
    let bad =
      List.find_opt
        (fun r ->
          match Hashtbl.find_opt invoked (Request.id r) with
          | Some s -> s > seq
          | None -> true)
        hist
    in
    match bad with
    | None -> Ok ()
    | Some r ->
        fail "Validity: request %d in %s history at seq %d was not invoked before the response"
          (Request.id r) kind seq
  in
  let eff_seq seq = match validity with Per_index -> seq | Global -> max_int in
  List.fold_left
    (fun acc ev ->
      let* () = acc in
      match ev with
      | Commit { seq; req; hist; _ } -> check_hist ~kind:"commit" ~seq:(eff_seq seq) ~req hist
      | Abort { seq; req; hist; _ } -> check_hist ~kind:"abort" ~seq:(eff_seq seq) ~req hist
      | Invoke _ | Init _ -> Ok ())
    (Ok ()) evs

let check_init_ordering evs =
  match init_hists evs with
  | [] -> Ok ()
  | h :: rest ->
      let common = List.fold_left History.common_prefix h rest in
      let targets = commit_hists evs @ abort_hists evs in
      if List.for_all (fun t -> History.is_prefix common t) targets then Ok ()
      else
        fail
          "Init Ordering: the common prefix of init histories is not a prefix of every \
           commit/abort history"

let check ?(validity = Per_index) evs =
  let* () = check_commit_order evs in
  let* () = check_abort_ordering evs in
  let* () = check_validity ~validity evs in
  check_init_ordering evs

let is_ok ?validity evs = match check ?validity evs with Ok () -> true | Error _ -> false
