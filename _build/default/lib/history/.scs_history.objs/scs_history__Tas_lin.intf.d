lib/history/tas_lin.mli: Objects Scs_spec Trace
