lib/history/abstract_check.ml: Hashtbl History List Printf Request Scs_spec
