lib/history/tas_lin.ml: List Objects Scs_spec Trace
