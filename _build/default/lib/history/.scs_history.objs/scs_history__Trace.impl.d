lib/history/trace.ml: Array Hashtbl List Printf Request Scs_spec Scs_util Vec
