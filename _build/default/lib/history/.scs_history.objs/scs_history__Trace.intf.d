lib/history/trace.mli: Request Scs_spec
