lib/history/linearize.mli: Scs_spec Spec Trace
