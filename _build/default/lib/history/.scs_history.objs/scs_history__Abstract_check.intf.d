lib/history/abstract_check.mli: History Request Scs_spec
