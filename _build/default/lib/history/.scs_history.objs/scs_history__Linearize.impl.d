lib/history/linearize.ml: Array Hashtbl List Option Request Scs_spec Spec Trace
