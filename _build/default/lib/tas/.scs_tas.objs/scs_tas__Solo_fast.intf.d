lib/tas/solo_fast.mli: Objects One_shot Outcome Scs_composable Scs_prims Scs_spec Tas_switch
