lib/tas/one_shot.mli: A1 A2 Objects Outcome Scs_composable Scs_prims Scs_spec Tas_switch
