lib/tas/locks.mli: Long_lived Scs_prims
