lib/tas/one_shot.ml: A1 A2 Outcome Scs_composable Scs_prims
