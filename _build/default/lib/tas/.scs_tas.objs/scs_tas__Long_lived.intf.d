lib/tas/long_lived.mli: Objects One_shot Scs_prims Scs_spec
