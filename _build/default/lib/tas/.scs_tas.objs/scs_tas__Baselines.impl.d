lib/tas/baselines.ml: Array Objects Printf Scs_consensus Scs_prims Scs_spec
