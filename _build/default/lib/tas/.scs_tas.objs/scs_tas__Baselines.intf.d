lib/tas/baselines.mli: Objects Scs_prims Scs_spec Scs_util
