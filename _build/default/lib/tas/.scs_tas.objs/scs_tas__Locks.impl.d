lib/tas/locks.ml: Long_lived Objects Scs_prims Scs_spec
