lib/tas/a1.mli: Objects Outcome Scs_composable Scs_prims Scs_spec Tas_switch
