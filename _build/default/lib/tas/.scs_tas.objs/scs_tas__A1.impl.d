lib/tas/a1.ml: Objects Outcome Scs_composable Scs_prims Scs_spec Tas_switch
