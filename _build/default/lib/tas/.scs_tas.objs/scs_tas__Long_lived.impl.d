lib/tas/long_lived.ml: Array Objects One_shot Printf Scs_prims Scs_spec
