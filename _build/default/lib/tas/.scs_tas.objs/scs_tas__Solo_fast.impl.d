lib/tas/solo_fast.ml: A2 Objects One_shot Outcome Scs_composable Scs_prims Scs_spec Tas_switch
