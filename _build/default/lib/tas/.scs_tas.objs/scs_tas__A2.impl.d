lib/tas/a2.ml: Objects Outcome Scs_composable Scs_prims Scs_spec Tas_switch
