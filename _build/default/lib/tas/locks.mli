(** Locks built on test-and-set objects.

    {!Make.Speculative} is the biased lock the paper's introduction
    motivates (Dice–Moir–Scherer [9], Vasudevan et al. [19]): acquire =
    win the long-lived speculative TAS, release = reset it. A single
    uncontended owner acquires and releases touching only registers; the
    hardware object is paid for only under step contention. The reference
    {!Make.Ttas} (test-and-test-and-set) lock pays an AWAR on every
    uncontended acquire. *)

module Make (P : Scs_prims.Prims_intf.S) : sig
  module Ttas : sig
    type t

    val create : name:string -> unit -> t

    val acquire : t -> unit
    (** Spins; on the simulator backend each retry consumes a scheduler
        turn via [P.pause]. *)

    val try_acquire : t -> bool
    val release : t -> unit
  end

  module Speculative : sig
    module Ll : module type of Long_lived.Make (P)

    type t
    type handle

    val create : name:string -> rounds:int -> unit -> t
    val handle : t -> pid:int -> handle

    val try_acquire : handle -> bool
    (** One TAS attempt on the current round; [false] means another
        process holds or just won the lock. *)

    val acquire : handle -> unit
    (** Retries rounds, pausing while the current round is decided. *)

    val release : handle -> unit

    val ll : t -> Ll.t
  end
end
