open Scs_spec

module Make (P : Scs_prims.Prims_intf.S) = struct
  module Ttas = struct
    type t = { t : P.tas_obj }

    let create ~name () = { t = P.tas_obj ~name:(name ^ ".lock") () }

    let try_acquire t = (not (P.tas_read t.t)) && P.test_and_set t.t

    let acquire t =
      let rec spin () =
        if P.tas_read t.t then begin
          P.pause ();
          spin ()
        end
        else if P.test_and_set t.t then ()
        else spin ()
      in
      spin ()

    let release t = P.tas_reset t.t
  end

  module Speculative = struct
    module Ll = Long_lived.Make (P)

    type t = { ll : Ll.t }
    type handle = { h : Ll.handle }

    let create ~name ~rounds () = { ll = Ll.create ~name ~rounds () }
    let handle t ~pid = { h = Ll.handle t.ll ~pid }

    let try_acquire h = Ll.test_and_set h.h = Objects.Winner

    let acquire h =
      let rec try_round () =
        let resp, _, played = Ll.test_and_set_info h.h in
        if resp = Objects.Winner then ()
        else begin
          (* lost round [played]: wait until its holder's reset advances
             Count past it. Waiting on the round we actually played (not
             on a fresh Count read) matters: the holder may have released
             already, in which case we must retry immediately. *)
          let rec wait () =
            if Ll.read_round h.h = played then begin
              P.pause ();
              wait ()
            end
          in
          wait ();
          try_round ()
        end
      in
      try_round ()

    let release h = Ll.reset h.h

    let ll t = t.ll
  end
end
