(** Descriptive statistics over samples of measurements.

    Used by the benchmark harness to summarize per-operation step counts,
    fence counts and wall-clock samples. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1 denominator) *)
  min : float;
  max : float;
  median : float;
  p95 : float;
  p99 : float;
}

val mean : float array -> float
val stddev : float array -> float

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]], linear interpolation between
    closest ranks. The input need not be sorted. *)

val summarize : float array -> summary
(** Raises [Invalid_argument] on an empty array. *)

val summarize_ints : int array -> summary

val mean_ci95 : float array -> float * float
(** Mean and its 95% normal-approximation confidence half-width
    (1.96·sd/√n); half-width 0 for n < 2. *)

val pp_summary : Format.formatter -> summary -> unit

val histogram : ?buckets:int -> float array -> (float * float * int) list
(** [(lo, hi, count)] bucket list spanning [min, max]. *)
