(** Minimal ASCII charts, used to render the paper's figure reproductions
    (contention-sweep series) directly on a terminal. *)

val bar : width:int -> max_value:float -> float -> string
(** A horizontal bar scaled so that [max_value] fills [width] cells. *)

val series :
  ?width:int -> title:string -> unit -> (string * float) list -> string
(** One labelled bar per data point, with the numeric value appended. *)

val multi_series :
  ?width:int ->
  title:string ->
  labels:string list ->
  (string * float list) list ->
  string
(** Grouped series: each row carries one bar per labelled column, rendered
    as stacked lines under a shared row label. *)
