lib/util/vec.mli:
