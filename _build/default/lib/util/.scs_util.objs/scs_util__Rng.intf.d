lib/util/rng.mli:
