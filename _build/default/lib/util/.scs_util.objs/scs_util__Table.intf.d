lib/util/table.mli:
