lib/util/chart.mli:
