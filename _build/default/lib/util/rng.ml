type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 finalizer: xor-shift-multiply mixing of the incremented
   state. Constants from Steele, Lea & Flood, OOPSLA 2014. *)
let next64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  assert (bound > 0);
  let mask = max_int in
  let r = Int64.to_int (next64 t) land mask in
  r mod bound

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t =
  let r = Int64.shift_right_logical (next64 t) 11 in
  Int64.to_float r *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (next64 t) 1L = 1L

let bernoulli t p = float t < p

let split t =
  let s = next64 t in
  { state = Int64.logxor s 0xA5A5A5A5A5A5A5A5L }

let shuffle t a =
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ -> List.nth l (int t (List.length l))
