let bar ~width ~max_value v =
  let cells =
    if max_value <= 0.0 then 0
    else begin
      let scaled = v /. max_value *. float_of_int width in
      let c = int_of_float (Float.round scaled) in
      if c > width then width else if c < 0 then 0 else c
    end
  in
  String.make cells '#' ^ String.make (width - cells) ' '

let series ?(width = 40) ~title () points =
  let buf = Buffer.create 256 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  let max_value = List.fold_left (fun m (_, v) -> Float.max m v) 0.0 points in
  let label_w = List.fold_left (fun m (l, _) -> max m (String.length l)) 0 points in
  List.iter
    (fun (label, v) ->
      Buffer.add_string buf
        (Printf.sprintf "%-*s |%s| %.2f\n" label_w label (bar ~width ~max_value v) v))
    points;
  Buffer.contents buf

let multi_series ?(width = 40) ~title ~labels rows =
  let buf = Buffer.create 512 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  let max_value =
    List.fold_left
      (fun m (_, vs) -> List.fold_left Float.max m vs)
      0.0 rows
  in
  let row_w = List.fold_left (fun m (l, _) -> max m (String.length l)) 0 rows in
  let col_w = List.fold_left (fun m l -> max m (String.length l)) 0 labels in
  List.iter
    (fun (row_label, vs) ->
      List.iteri
        (fun i v ->
          let col = try List.nth labels i with _ -> "" in
          let lead = if i = 0 then Printf.sprintf "%-*s" row_w row_label else String.make row_w ' ' in
          Buffer.add_string buf
            (Printf.sprintf "%s %-*s |%s| %.2f\n" lead col_w col (bar ~width ~max_value v) v))
        vs)
    rows;
  Buffer.contents buf
