type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p95 : float;
  p99 : float;
}

let mean xs =
  if Array.length xs = 0 then invalid_arg "Stats.mean: empty";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (acc /. float_of_int (n - 1))
  end

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) in
  let hi = int_of_float (ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let summarize xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.summarize: empty";
  let mn = Array.fold_left min xs.(0) xs in
  let mx = Array.fold_left max xs.(0) xs in
  {
    n;
    mean = mean xs;
    stddev = stddev xs;
    min = mn;
    max = mx;
    median = percentile xs 50.0;
    p95 = percentile xs 95.0;
    p99 = percentile xs 99.0;
  }

let summarize_ints xs = summarize (Array.map float_of_int xs)

let mean_ci95 xs =
  let n = Array.length xs in
  let m = mean xs in
  if n < 2 then (m, 0.0)
  else (m, 1.96 *. stddev xs /. sqrt (float_of_int n))

let pp_summary fmt s =
  Format.fprintf fmt "n=%d mean=%.2f sd=%.2f min=%.0f med=%.1f p95=%.1f p99=%.1f max=%.0f"
    s.n s.mean s.stddev s.min s.median s.p95 s.p99 s.max

let histogram ?(buckets = 10) xs =
  let n = Array.length xs in
  if n = 0 then []
  else begin
    let mn = Array.fold_left min xs.(0) xs in
    let mx = Array.fold_left max xs.(0) xs in
    let width = if mx > mn then (mx -. mn) /. float_of_int buckets else 1.0 in
    let counts = Array.make buckets 0 in
    let bucket_of x =
      let b = int_of_float ((x -. mn) /. width) in
      if b >= buckets then buckets - 1 else if b < 0 then 0 else b
    in
    Array.iter (fun x -> counts.(bucket_of x) <- counts.(bucket_of x) + 1) xs;
    List.init buckets (fun i ->
        let lo = mn +. (float_of_int i *. width) in
        (lo, lo +. width, counts.(i)))
  end
