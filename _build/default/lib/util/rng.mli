(** Deterministic pseudo-random number generation (SplitMix64).

    All randomness in the repository flows through this module so that every
    simulation, schedule and benchmark is reproducible from an integer seed.
    The generator is the SplitMix64 mixer of Steele, Lea and Flood, which has
    a full 2^64 period and passes BigCrush; it is more than adequate for
    schedule generation and randomized algorithms. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy sharing the current state. *)

val next64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val split : t -> t
(** A generator statistically independent of the parent's future output.
    Used to hand sub-streams to processes without interleaving effects. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)
