(** Fixed-width text tables for the experiment harness.

    The benchmark executable reports every reproduced table of the paper in
    this format so that EXPERIMENTS.md can quote the output verbatim. *)

type align = Left | Right

val render : ?title:string -> ?aligns:align list -> header:string list -> string list list -> string
(** Render a table with a header row, a separator, and body rows. Columns
    are padded to the widest cell; [aligns] defaults to [Left] for the first
    column and [Right] for the rest. *)

val print : ?title:string -> ?aligns:align list -> header:string list -> string list list -> unit

val fmt_float : ?digits:int -> float -> string
val fmt_int : int -> string
