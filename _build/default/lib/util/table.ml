type align = Left | Right

let pad align width s =
  let len = String.length s in
  if len >= width then s
  else begin
    let fill = String.make (width - len) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  end

let default_aligns ncols = List.init ncols (fun i -> if i = 0 then Left else Right)

let render ?title ?aligns ~header rows =
  let ncols = List.length header in
  let aligns = match aligns with Some a -> a | None -> default_aligns ncols in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri
      (fun i cell -> if i < ncols then widths.(i) <- max widths.(i) (String.length cell))
      row
  in
  measure header;
  List.iter measure rows;
  let buf = Buffer.create 256 in
  (match title with
  | Some t ->
      Buffer.add_string buf t;
      Buffer.add_char buf '\n'
  | None -> ());
  let emit_row row =
    let cells =
      List.mapi
        (fun i cell ->
          let a = try List.nth aligns i with _ -> Right in
          pad a widths.(i) cell)
        row
    in
    Buffer.add_string buf (String.concat "  " cells);
    Buffer.add_char buf '\n'
  in
  emit_row header;
  let sep = List.init ncols (fun i -> String.make widths.(i) '-') in
  emit_row sep;
  List.iter emit_row rows;
  Buffer.contents buf

let print ?title ?aligns ~header rows = print_string (render ?title ?aligns ~header rows)

let fmt_float ?(digits = 2) x = Printf.sprintf "%.*f" digits x
let fmt_int n = string_of_int n
