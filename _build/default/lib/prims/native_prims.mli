(** {!Prims_intf.S} implemented on OCaml 5 [Atomic], for genuinely parallel
    execution under [Domain]s. Names are accepted for interface parity and
    ignored. *)

include Prims_intf.S
