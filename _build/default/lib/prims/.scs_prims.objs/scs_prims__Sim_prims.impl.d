lib/prims/sim_prims.ml: Prims_intf Scs_sim Sim
