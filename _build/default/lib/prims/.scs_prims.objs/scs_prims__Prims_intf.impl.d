lib/prims/prims_intf.ml:
