lib/prims/native_prims.ml: Atomic Domain
