lib/prims/sim_prims.mli: Prims_intf Scs_sim
