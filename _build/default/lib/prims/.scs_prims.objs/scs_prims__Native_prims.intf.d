lib/prims/native_prims.mli: Prims_intf
