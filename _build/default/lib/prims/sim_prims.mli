(** {!Prims_intf.S} backed by the deterministic simulator.

    [make sim] returns a first-class primitives module whose object
    constructors allocate inside [sim] and whose operations perform effects
    handled by [sim]'s scheduler. Code using the resulting module must run
    inside a fiber spawned on the same simulator. *)

val make : Scs_sim.Sim.t -> (module Prims_intf.S)
