open Scs_composable

type 'v t = {
  name : string;
  propose_raw : pid:int -> 'v option -> ('v option, 'v option) Outcome.t;
  run : pid:int -> old:'v option -> 'v -> ('v option, 'v option) Outcome.t;
}

let wrap ~name propose_raw =
  let run ~pid ~old v =
    match propose_raw ~pid old with
    | Outcome.Abort _ -> Outcome.Abort old
    | Outcome.Commit None -> propose_raw ~pid (Some v)
    | Outcome.Commit (Some _) as committed -> committed
  in
  { name; propose_raw; run }

let probe t ~pid =
  match t.propose_raw ~pid None with Outcome.Commit v -> v | Outcome.Abort v -> v
