(** SplitConsensus (Appendix A, Algorithm 3): abortable consensus from a
    splitter and two registers, after Luchangco, Moir and Shavit.

    Solo step complexity is O(1). The instance commits in the absence of
    {e interval} contention; under contention it may abort, returning the
    current tentative value. A committed owner that saw no contention
    resets the splitter, making the instance reusable (needed by the
    wrapper's ⊥-then-value two-phase proposal). *)

module Make (P : Scs_prims.Prims_intf.S) : sig
  type 'v t

  val create : name:string -> unit -> 'v t
  val instance : 'v t -> 'v Consensus_intf.t
end
