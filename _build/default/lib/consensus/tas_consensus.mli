(** Two-process wait-free consensus from one hardware test-and-set and two
    registers — the classic witness that TAS has consensus number exactly 2
    (Herlihy 1991), used by experiment T6 to certify the computational
    power of the speculative TAS's base objects. *)

module Make (P : Scs_prims.Prims_intf.S) : sig
  type 'v t

  val create : name:string -> unit -> 'v t

  val propose : 'v t -> pid:int -> 'v -> 'v
  (** [pid] must be 0 or 1. *)
end
