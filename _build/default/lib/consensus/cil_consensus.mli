(** Randomized two-process consensus from single-writer registers, in the
    style of Chor, Israeli and Li.

    Against the repository's oblivious (seeded) schedulers this terminates
    with probability 1; a round cap turns pathological schedules into an
    exception rather than a livelock. Safety (agreement and validity) is
    independent of the coin flips and is model-checked exhaustively by the
    test suite over bounded interleavings.

    This is the register-only building block of the Afek–Gafni–Tromp–
    Vitányi-style randomized test-and-set baseline. *)

exception Round_cap_exceeded

module Make (P : Scs_prims.Prims_intf.S) : sig
  type 'v t

  val create : name:string -> unit -> 'v t

  val propose : 'v t -> pid:int -> rng:Scs_util.Rng.t -> ?round_cap:int -> 'v -> 'v
  (** [pid] must be 0 or 1; [round_cap] defaults to 10_000. *)
end
