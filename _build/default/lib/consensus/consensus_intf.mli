(** Uniform interface to abortable consensus instances.

    An abortable consensus instance returns a commit or abort indication
    together with a decision value (Section 4.2). [⊥] is represented as
    [None]:
    - [Commit (Some d)] — the instance decided [d];
    - [Commit None] — the caller proposed [⊥] on an undecided instance (a
      probe, or initialisation with no inherited value), deciding nothing;
    - [Abort w] — contention: [w] is the instance's current tentative value
      ([None] when it has none).

    [run] is the paper's wrapper (the [SplitConsensus]/[AbortableBakery]
    procedures of Appendix A): first propose the inherited value [old];
    on abort return [Abort old]; on [Commit None] propose the real value.

    Agreement: all [Commit (Some _)] outcomes of one instance carry the
    same value. *)

open Scs_composable

type 'v t = {
  name : string;
  propose_raw : pid:int -> 'v option -> ('v option, 'v option) Outcome.t;
      (** the bare [propose] procedure *)
  run : pid:int -> old:'v option -> 'v -> ('v option, 'v option) Outcome.t;
      (** the [init]+[propose] wrapper *)
}

val wrap :
  name:string -> (pid:int -> 'v option -> ('v option, 'v option) Outcome.t) -> 'v t
(** Build the standard wrapper around a bare [propose]. *)

val probe : 'v t -> pid:int -> 'v option
(** Best-known decision value: propose [⊥] and take the returned value,
    whether committed or aborted (Section 4.2's recovery read). *)
