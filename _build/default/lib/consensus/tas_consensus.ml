module Make (P : Scs_prims.Prims_intf.S) = struct
  type 'v t = { props : 'v option P.reg array; t : P.tas_obj }

  let create ~name () =
    {
      props = Array.init 2 (fun i -> P.reg ~name:(Printf.sprintf "%s.prop[%d]" name i) None);
      t = P.tas_obj ~name:(name ^ ".T") ();
    }

  let propose t ~pid v =
    if pid < 0 || pid > 1 then invalid_arg "Tas_consensus.propose: pid must be 0 or 1";
    P.write t.props.(pid) (Some v);
    if P.test_and_set t.t then v
    else begin
      match P.read t.props.(1 - pid) with
      | Some w -> w
      | None ->
          (* The winner wrote its proposal before playing TAS, so a loser
             always finds it. *)
          assert false
    end
end
