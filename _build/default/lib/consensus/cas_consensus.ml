open Scs_composable

module Make (P : Scs_prims.Prims_intf.S) = struct
  type 'v t = { c : 'v option P.cas_obj; name : string }

  let create ~name () = { c = P.cas_obj ~name:(name ^ ".CAS") None; name }

  (* Proposing ⊥ is a pure read: it never decides, so an undecided
     instance stays decidable (probe semantics). *)
  let propose t ~pid:_ = function
    | None -> Outcome.Commit (P.cas_read t.c)
    | Some _ as proposal ->
        let _ = P.compare_and_swap t.c ~expect:None ~update:proposal in
        Outcome.Commit (P.cas_read t.c)

  let instance t = Consensus_intf.wrap ~name:t.name (fun ~pid v -> propose t ~pid v)
end
