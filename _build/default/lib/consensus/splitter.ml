type result = Stop | Left | Right

let result_to_string = function Stop -> "stop" | Left -> "left" | Right -> "right"

module Make (P : Scs_prims.Prims_intf.S) = struct
  type t = { x : int option P.reg; y : bool P.reg }

  let create ~name () =
    { x = P.reg ~name:(name ^ ".X") None; y = P.reg ~name:(name ^ ".Y") false }

  let split t ~pid =
    P.write t.x (Some pid);
    if P.read t.y then Right
    else begin
      P.write t.y true;
      if P.read t.x = Some pid then Stop else Left
    end

  let reset t =
    P.write t.x None;
    P.write t.y false
end
