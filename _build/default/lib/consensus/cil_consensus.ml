open Scs_util

exception Round_cap_exceeded

module Make (P : Scs_prims.Prims_intf.S) = struct
  type 'v t = { r : (int * 'v) option P.reg array }

  let create ~name () =
    { r = Array.init 2 (fun i -> P.reg ~name:(Printf.sprintf "%s.R[%d]" name i) None) }

  (* Round-based conflict resolution: adopt the other's value when it is
     ahead; flip a coin on a same-round conflict; decide once two rounds
     ahead of the last observed state of the other process (it must adopt
     our value before it can catch up). *)
  let propose t ~pid ~rng ?(round_cap = 10_000) v =
    if pid < 0 || pid > 1 then invalid_arg "Cil_consensus.propose: pid must be 0 or 1";
    let other = 1 - pid in
    let rec go round value fuel =
      if fuel = 0 then raise Round_cap_exceeded;
      P.write t.r.(pid) (Some (round, value));
      match P.read t.r.(other) with
      | None -> value  (* the other never started: decide *)
      | Some (r_other, v_other) ->
          if r_other > round then go r_other v_other (fuel - 1)
          else if r_other = round then begin
            if v_other = value then go (round + 1) value (fuel - 1)
            else begin
              let value = if Rng.bool rng then v_other else value in
              go round value (fuel - 1)
            end
          end
          else if round >= r_other + 2 then value
          else go (round + 1) value (fuel - 1)
    in
    go 1 v round_cap
end
