lib/consensus/chain.mli: Consensus_intf Scs_prims
