lib/consensus/abortable_bakery.ml: Array Consensus_intf List Outcome Printf Scs_composable Scs_prims
