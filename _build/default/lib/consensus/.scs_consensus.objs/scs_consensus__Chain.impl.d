lib/consensus/chain.ml: Array Consensus_intf Outcome Printf Scs_composable Scs_prims
