lib/consensus/split_consensus.mli: Consensus_intf Scs_prims
