lib/consensus/tas_consensus.mli: Scs_prims
