lib/consensus/splitter.ml: Scs_prims
