lib/consensus/cil_consensus.ml: Array Printf Rng Scs_prims Scs_util
