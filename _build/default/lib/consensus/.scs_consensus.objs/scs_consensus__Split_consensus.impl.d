lib/consensus/split_consensus.ml: Consensus_intf Outcome Scs_composable Scs_prims Splitter
