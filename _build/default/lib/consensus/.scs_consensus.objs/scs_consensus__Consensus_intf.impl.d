lib/consensus/consensus_intf.ml: Outcome Scs_composable
