lib/consensus/cas_consensus.mli: Consensus_intf Scs_prims
