lib/consensus/cil_consensus.mli: Scs_prims Scs_util
