lib/consensus/tas_consensus.ml: Array Printf Scs_prims
