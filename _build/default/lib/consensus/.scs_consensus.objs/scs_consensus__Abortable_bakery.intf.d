lib/consensus/abortable_bakery.mli: Consensus_intf Scs_prims
