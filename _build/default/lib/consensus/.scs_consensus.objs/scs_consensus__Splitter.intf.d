lib/consensus/splitter.mli: Scs_prims
