lib/consensus/consensus_intf.mli: Outcome Scs_composable
