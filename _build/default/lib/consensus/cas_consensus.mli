(** Wait-free consensus from a single compare-and-swap object (consensus
    number ∞). Never aborts; closes a composed consensus chain or a
    composed universal construction (Section 4.2, wait-free variant). *)

module Make (P : Scs_prims.Prims_intf.S) : sig
  type 'v t

  val create : name:string -> unit -> 'v t
  val instance : 'v t -> 'v Consensus_intf.t
end
