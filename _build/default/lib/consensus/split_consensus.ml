open Scs_composable

module Make (P : Scs_prims.Prims_intf.S) = struct
  module Sp = Splitter.Make (P)

  type 'v t = {
    s : Sp.t;
    v : 'v option P.reg;  (** tentative decision; [None] is ⊥ *)
    c : bool P.reg;  (** contention flag *)
    name : string;
  }

  let create ~name () =
    {
      s = Sp.create ~name:(name ^ ".S") ();
      v = P.reg ~name:(name ^ ".V") None;
      c = P.reg ~name:(name ^ ".C") false;
      name;
    }

  (* Algorithm 3, [propose]. Proposing [None] on a fresh, uncontended
     instance commits ⊥ and leaves the instance decidable.

     Deviation from the paper's pseudocode: the commit path that reads an
     already-decided [V] under [C = false] also resets the splitter. The
     paper resets only after a fresh write (line 12), under which a third
     sequential proposer finds the splitter consumed and aborts despite
     the absence of interval contention — contradicting the stated
     progress predicate. The extra reset is safe: [V] transitions
     ⊥ → [Some v] exactly once (a ⊥-proposal never overwrites a decided
     value), so any later splitter owner re-reads the same decision. *)
  let propose t ~pid (v : 'v option) =
    if Sp.split t.s ~pid = Splitter.Stop then begin
      match P.read t.v with
      | Some _ as cur ->
          if not (P.read t.c) then begin
            Sp.reset t.s;
            Outcome.Commit cur
          end
          else Outcome.Abort cur
      | None ->
          P.write t.v v;
          if not (P.read t.c) then begin
            Sp.reset t.s;
            Outcome.Commit v
          end
          else Outcome.Abort (P.read t.v)
    end
    else begin
      P.write t.c true;
      Outcome.Abort (P.read t.v)
    end

  let instance t = Consensus_intf.wrap ~name:t.name (fun ~pid v -> propose t ~pid v)
end
