(** AbortableBakery (Appendix A, Algorithm 4): abortable consensus from
    registers only — the abortable variant of the solo-fast consensus of
    Attiya, Guerraoui, Hendler and Kuznetsov.

    Each process tries to impose its value by associating it with the
    highest timestamp in the arrays [(Ai)]/[(Bi)] and double-checking that
    nothing moved; any failed check means step contention and the process
    aborts after raising the [Quit] flag. Solo step complexity is O(n)
    (three collects); the instance commits in the absence of {e step}
    contention. *)

module Make (P : Scs_prims.Prims_intf.S) : sig
  type 'v t

  val create : name:string -> n:int -> unit -> 'v t
  (** [n] is the number of processes (pids [0 .. n-1]). *)

  val instance : 'v t -> 'v Consensus_intf.t
end
