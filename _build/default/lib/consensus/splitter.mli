(** The splitter of Moir and Anderson, from two registers.

    Guarantees, within one "era" (between resets):
    - at most one process returns [Stop];
    - a process running alone (no concurrent [split]) returns [Stop];
    - if several processes enter, not all return [Left] and not all return
      [Right].

    [reset] may only be called by a process that owns the splitter and has
    verified the absence of contention (as in SplitConsensus, Algorithm 3,
    line 12); resetting under contention forfeits the guarantees for
    in-flight operations. *)

type result = Stop | Left | Right

val result_to_string : result -> string

module Make (P : Scs_prims.Prims_intf.S) : sig
  type t

  val create : name:string -> unit -> t
  val split : t -> pid:int -> result
  val reset : t -> unit
end
