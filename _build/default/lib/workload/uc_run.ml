open Scs_util
open Scs_spec
open Scs_history
open Scs_sim
open Scs_consensus

type stage_kind = S_split | S_bakery | S_cas

let stage_name = function S_split -> "split" | S_bakery -> "bakery" | S_cas -> "cas"

type 'i uc_result = {
  responses : (int * 'i Request.t * int) list;
  outer : ('i, unit, unit) Trace.event array;
  commit_hists : (int * 'i History.t) list;
  stage_events : 'i Abstract_check.event list array;
  switch_lens : (int * int) list;
  final_stages : int array;
  sim : Sim.t;
}

let run ?(seed = 42) ?max_requests ?(crashes = []) ~n ~ops_per_proc ~stages ~policy
    ~gen_payload () =
  let rng = Rng.create seed in
  let sim = Sim.create ~max_steps:20_000_000 ~n () in
  let module P = (val Scs_prims.Sim_prims.make sim) in
  let module U = Scs_universal.Universal.Make (P) in
  let max_requests =
    match max_requests with Some m -> m | None -> (4 * n * ops_per_proc) + 8
  in
  let make_stage kind sname =
    let make_cons ~slot =
      let cname = Printf.sprintf "%s.cons%d" sname slot in
      match kind with
      | S_split ->
          let module SC = Split_consensus.Make (P) in
          SC.instance (SC.create ~name:cname ())
      | S_bakery ->
          let module AB = Abortable_bakery.Make (P) in
          AB.instance (AB.create ~name:cname ~n ())
      | S_cas ->
          let module CC = Cas_consensus.Make (P) in
          CC.instance (CC.create ~name:cname ())
    in
    U.create ~name:sname ~n ~max_requests ~make_cons ()
  in
  let ucs =
    Array.of_list
      (List.mapi (fun i k -> make_stage k (Printf.sprintf "uc%d-%s" i (stage_name k))) stages)
  in
  let n_stages = Array.length ucs in
  (* Event recording: one global seq counter keeps per-stage event lists
     mutually ordered. *)
  let seq = ref 0 in
  let next_seq () =
    let s = !seq in
    incr seq;
    s
  in
  let stage_events = Array.make n_stages [] in
  let push_stage s ev = stage_events.(s) <- ev :: stage_events.(s) in
  let outer = Trace.create ~clock:(fun () -> Sim.clock sim) () in
  let responses = ref [] in
  let commit_hists = ref [] in
  let switch_lens = ref [] in
  let final_stages = Array.make n 0 in
  let gen = Request.Gen.create () in
  for pid = 0 to n - 1 do
    Sim.spawn sim pid (fun () ->
        let stage = ref 0 in
        let handle = ref (U.handle ucs.(0) ~pid ~init:[]) in
        let fresh_on_stage = ref true in
        (* new handle not yet used: first invoke records an Init *)
        let init_hist = ref [] in
        for k = 1 to ops_per_proc do
          let payload = gen_payload ~pid ~k in
          let req = Request.Gen.fresh gen payload in
          Trace.invoke outer ~pid req;
          let s0 = Sim.steps_of sim pid in
          let rec go () =
            let s = !stage in
            if !fresh_on_stage && !init_hist <> [] then
              push_stage s
                (Abstract_check.Init { seq = next_seq (); pid; req; hist = !init_hist })
            else push_stage s (Abstract_check.Invoke { seq = next_seq (); pid; req });
            fresh_on_stage := false;
            match U.invoke !handle req with
            | Scs_universal.Universal.Committed hist ->
                push_stage s (Abstract_check.Commit { seq = next_seq (); pid; req; hist });
                commit_hists := (pid, hist) :: !commit_hists;
                Trace.commit outer ~pid req ()
            | Scs_universal.Universal.Aborted_with hist ->
                push_stage s (Abstract_check.Abort { seq = next_seq (); pid; req; hist });
                if s + 1 >= n_stages then failwith "Uc_run: final stage aborted"
                else begin
                  switch_lens := (pid, List.length hist) :: !switch_lens;
                  stage := s + 1;
                  handle := U.handle ucs.(s + 1) ~pid ~init:hist;
                  init_hist := hist;
                  fresh_on_stage := true;
                  go ()
                end
          in
          go ();
          responses := (pid, req, Sim.steps_of sim pid - s0) :: !responses
        done;
        final_stages.(pid) <- !stage)
  done;
  let p = policy (Rng.split rng) in
  let p = if crashes = [] then p else Policy.with_crashes crashes p in
  Sim.run sim p;
  {
    responses = List.rev !responses;
    outer = Trace.events outer;
    commit_hists = List.rev !commit_hists;
    stage_events = Array.map List.rev stage_events;
    switch_lens = List.rev !switch_lens;
    final_stages;
    sim;
  }

let check_responses spec result =
  (* Commit histories must be totally prefix-ordered (within and across
     stages: later stages extend earlier abort histories, which extend all
     commits), and every response they encode must be consistent under the
     sequential spec. *)
  let hists = List.map snd result.commit_hists in
  let rec pairs = function
    | [] -> Ok ()
    | h :: rest ->
        if List.for_all (fun h' -> History.is_prefix h h' || History.is_prefix h' h) rest then
          pairs rest
        else Error "commit histories are not prefix-ordered"
  in
  match pairs hists with
  | Error _ as e -> e
  | Ok () ->
      if
        List.for_all
          (fun h ->
            History.no_dups h
            &&
            let _, resps = History.run spec h in
            List.length resps = List.length h)
          hists
      then Ok ()
      else Error "a commit history has duplicates or fails to replay"
