lib/workload/tas_run.mli: Hashtbl Mem_event Objects Policy Scs_composable Scs_history Scs_sim Scs_spec Scs_tas Scs_util Sim Tas_switch Trace
