lib/workload/cons_run.ml: Abortable_bakery Cas_consensus Chain Consensus_intf List Outcome Policy Rng Scs_composable Scs_consensus Scs_prims Scs_sim Scs_util Sim Split_consensus
