lib/workload/uc_run.mli: Abstract_check History Policy Request Scs_history Scs_sim Scs_spec Scs_util Sim Spec Trace
