lib/workload/cons_run.mli: Outcome Policy Scs_composable Scs_sim Scs_util Sim
