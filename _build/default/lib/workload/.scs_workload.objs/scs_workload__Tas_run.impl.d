lib/workload/tas_run.ml: Array Detect Hashtbl List Mem_event Objects Option Outcome Policy Request Rng Scs_composable Scs_history Scs_prims Scs_sim Scs_spec Scs_tas Scs_util Sim Tas_switch Trace
