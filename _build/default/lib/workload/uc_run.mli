(** Simulated workloads over the composable universal construction
    (experiments T5/T6 and the Abstract-property tests).

    The runner drives the stage chain explicitly (rather than through
    {!Scs_universal.Uc_object}) so that it can record, per stage, the
    Abstract events — invokes, inits with inherited histories, commits and
    aborts with returned histories — that
    {!Scs_history.Abstract_check.check} consumes. *)

open Scs_spec
open Scs_history
open Scs_sim

type stage_kind = S_split | S_bakery | S_cas

val stage_name : stage_kind -> string

type 'i uc_result = {
  responses : (int * 'i Request.t * int) list;
      (** (pid, request, steps) per committed request *)
  outer : ('i, unit, unit) Trace.event array;
      (** client-level invoke/commit trace (responses are recomputed from
          histories by the caller's spec, so the trace carries unit) *)
  commit_hists : (int * 'i History.t) list;  (** (pid, history) per commit *)
  stage_events : 'i Abstract_check.event list array;  (** per stage, in order *)
  switch_lens : (int * int) list;  (** (pid, |abort history|) per switch *)
  final_stages : int array;  (** per pid: stage in use at the end *)
  sim : Sim.t;
}

val run :
  ?seed:int ->
  ?max_requests:int ->
  ?crashes:(int * int) list ->
  n:int ->
  ops_per_proc:int ->
  stages:stage_kind list ->
  policy:(Scs_util.Rng.t -> Policy.t) ->
  gen_payload:(pid:int -> k:int -> 'i) ->
  unit ->
  'i uc_result
(** Each process issues [ops_per_proc] requests with payloads from
    [gen_payload]. The last stage should be [S_cas] for termination under
    adversarial schedules. *)

val check_responses :
  ('q, 'i, 'r) Spec.t -> 'i uc_result -> (unit, string) result
(** Verify that all commit histories are prefix-consistent and replay them
    under the spec to check every response is explained (the client-side
    view of the Commit Order property). *)
