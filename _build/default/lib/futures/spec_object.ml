open Scs_spec
open Scs_consensus

type transfer = History | State_only
type stage = Fast | Fallback

module Make (P : Scs_prims.Prims_intf.S) = struct
  module U = Scs_universal.Universal.Make (P)
  module Sp = Splitter.Make (P)

  (* The fast module's single-register state: the object value plus the
     applied requests with their responses, newest first. Keeping both in
     one register makes every publication atomic. Only a splitter owner
     ever writes the register (non-owners abort), and the splitter is
     reset only by an owner after its write, so the write chain never
     forks: it is the fast path's linearisation. *)
  type ('q, 'i, 'r) fast_state = {
    value : 'q;
    applied : ('i Request.t * 'r) list;
  }

  type ('q, 'i, 'r) t = {
    spec : ('q, 'i, 'r) Spec.t;
    transfer : transfer;
    state_to_requests : 'q -> 'i list;
    state : ('q, 'i, 'r) fast_state P.reg;
    splitter : Sp.t;
    aborted : bool P.reg;
    uc : 'i U.t;
    gen : Request.Gen.t;  (** fresh ids for State_only resynthesis *)
  }

  type ('q, 'i, 'r) handle = {
    t : ('q, 'i, 'r) t;
    pid : int;
    mutable uc_handle : 'i U.handle option;  (** Some once switched *)
    mutable switched_len : int option;
  }

  let create ?(transfer = History) ~name ~n ~max_requests ~spec ~state_to_requests () =
    let make_cons ~slot =
      let module CC = Cas_consensus.Make (P) in
      CC.instance (CC.create ~name:(Printf.sprintf "%s.cons%d" name slot) ())
    in
    {
      spec;
      transfer;
      state_to_requests;
      state = P.reg ~name:(name ^ ".state") { value = spec.Spec.init; applied = [] };
      splitter = Sp.create ~name:(name ^ ".split") ();
      aborted = P.reg ~name:(name ^ ".aborted") false;
      uc = U.create ~name:(name ^ ".uc") ~n ~max_requests ~make_cons ();
      gen = Request.Gen.create ();
    }

  let handle t ~pid = { t; pid; uc_handle = None; switched_len = None }

  (* The history an abort transfers: the applied requests in application
     order, or (State_only) a fresh resynthesis of the value that forgets
     which requests produced it. *)
  let switch_history t (st : _ fast_state) =
    match t.transfer with
    | History -> List.rev_map fst st.applied
    | State_only ->
        List.map (fun payload -> Request.Gen.fresh t.gen payload)
          (t.state_to_requests st.value)

  let to_fallback h st =
    let hist = switch_history h.t st in
    h.switched_len <- Some (List.length hist);
    let uh = U.handle h.t.uc ~pid:h.pid ~init:hist in
    h.uc_handle <- Some uh;
    uh

  let response_from_history h req hist =
    match History.beta_at h.t.spec hist (Request.id req) with
    | Some r -> r
    | None -> failwith "Spec_object: committed history misses the request"

  let fallback_apply h uh req =
    match U.invoke uh req with
    | Scs_universal.Universal.Committed hist -> response_from_history h req hist
    | Scs_universal.Universal.Aborted_with _ ->
        (* single CAS stage: unreachable *)
        failwith "Spec_object: wait-free stage aborted"

  (* One fast-path attempt; [Error st] means contention was detected and
     [st] is the state to transfer.

     Flag discipline (as in A1 line 15 and the UC's commit path): the
     owner re-reads [aborted] after publishing its write; a leaver writes
     [aborted] before reading the state. If the owner read [false], its
     write precedes every leaver's state read (so every transferred
     history contains its request); if it read [true], it downgrades —
     the operation reaches the fallback through the owner's own init
     history and is answered there. *)
  let fast_attempt t ~pid req =
    if P.read t.aborted then Error (P.read t.state)
    else if Sp.split t.splitter ~pid <> Splitter.Stop then begin
      P.write t.aborted true;
      Error (P.read t.state)
    end
    else begin
      let st = P.read t.state in
      (* a request that already took effect replays its recorded response *)
      match
        List.find_opt (fun (r, _) -> Request.id r = Request.id req) st.applied
      with
      | Some (_, resp) ->
          Sp.reset t.splitter;
          Ok resp
      | None ->
          let value', resp = t.spec.Spec.apply st.value (Request.payload req) in
          P.write t.state { value = value'; applied = (req, resp) :: st.applied };
          if P.read t.aborted then Error (P.read t.state)
          else begin
            Sp.reset t.splitter;
            Ok resp
          end
    end

  let apply h req =
    match h.uc_handle with
    | Some uh -> fallback_apply h uh req
    | None -> (
        match fast_attempt h.t ~pid:h.pid req with
        | Ok resp -> resp
        | Error st ->
            let uh = to_fallback h st in
            fallback_apply h uh req)

  let stage_of h = match h.uc_handle with Some _ -> Fallback | None -> Fast
  let switch_len h = h.switched_len

  (* entry aborted-read (1), splitter acquire (4), state read (1), state
     write (1), aborted re-read (1), splitter reset (2) *)
  let fast_solo_steps () = 10
end
