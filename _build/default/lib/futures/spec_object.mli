(** A light-weight speculative implementation of {e any} sequential type —
    the paper's future-work direction (Section 7: "apply our framework to
    implementations of more complex objects, such as queues or
    fetch-and-increment registers").

    Structure, mirroring the speculative TAS:
    - the {b fast module} keeps the object's state in one atomic register
      together with the list of applied requests and their responses; an
      operation writes an ownership register, applies the request locally,
      publishes the new state, and re-checks ownership and the [aborted]
      flag (the [A1] pattern generalised). Solo cost is O(1) shared-memory
      steps — against the universal construction's Θ(n) announce/scan per
      operation;
    - on contention the module aborts with the {b applied-request history}
      as the switch value, and the process moves permanently to a
      wait-free universal-construction instance (CAS consensus)
      initialised with that history. A request that took effect before the
      abort is not re-executed: the history carries its response.

    The experiment this module exists for (T9): the switch value is
    Θ(applied history) for a queue or a counter — the response-replay
    table cannot be compressed away for types whose responses depend on
    long-past operations — whereas the TAS of Section 6 collapses it to
    one token. Composability of the fast path costs O(1) {e time} for any
    type, but O(1) {e state} only when the semantics allow.

    [`State_only] transfer mode deliberately reproduces the naive design
    that drops the replay table and re-synthesises the state as fresh
    requests: a request whose effect survived the abort is then applied
    twice, and tests exhibit the resulting non-linearizable executions.
    It exists as an executable negative result; use [`History] (default)
    for correctness. *)

open Scs_spec

type transfer = History | State_only
type stage = Fast | Fallback

module Make (P : Scs_prims.Prims_intf.S) : sig
  type ('q, 'i, 'r) t
  type ('q, 'i, 'r) handle

  val create :
    ?transfer:transfer ->
    name:string ->
    n:int ->
    max_requests:int ->
    spec:('q, 'i, 'r) Spec.t ->
    state_to_requests:('q -> 'i list) ->
    unit ->
    ('q, 'i, 'r) t
  (** [state_to_requests] re-synthesises a state as a request sequence and
      is only used by the [State_only] transfer mode (e.g. a queue state
      [\[1;2\]] becomes [\[Enqueue 1; Enqueue 2\]]). *)

  val handle : ('q, 'i, 'r) t -> pid:int -> ('q, 'i, 'r) handle

  val apply : ('q, 'i, 'r) handle -> 'i Request.t -> 'r
  (** Wait-free once the fallback stage is reached; obstruction-free
      before. Request ids must be globally unique. *)

  val stage_of : ('q, 'i, 'r) handle -> stage
  val switch_len : ('q, 'i, 'r) handle -> int option
  (** Length of the transferred history, once switched. *)

  val fast_solo_steps : unit -> int
  (** The fast path's solo step count (for the harness; constant). *)
end
