lib/futures/spec_object.ml: Cas_consensus History List Printf Request Scs_consensus Scs_prims Scs_spec Scs_universal Spec Splitter
