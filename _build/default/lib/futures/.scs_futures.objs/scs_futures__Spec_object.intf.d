lib/futures/spec_object.mli: Request Scs_prims Scs_spec Spec
