(** Wait-free atomic snapshot from single-writer registers, after Afek,
    Attiya, Dolev, Gafni, Merritt and Shavit (JACM 1993).

    The universal construction's [Reqs] object (Section 4.2) is a snapshot
    the paper assumes as given; this is the canonical register-only
    construction. [update] embeds the updater's own scan, so a scanner that
    sees the same component move twice can borrow that embedded view;
    otherwise a clean double collect is itself a valid snapshot. Both scan
    and update are wait-free with O(n²) reads worst case. *)

module Make (P : Scs_prims.Prims_intf.S) : sig
  type 'a t

  val create : name:string -> n:int -> init:'a -> 'a t
  (** Component [i] is writable only by pid [i]; all start as [init]. *)

  val update : 'a t -> pid:int -> 'a -> unit
  val scan : 'a t -> pid:int -> 'a array
end
