open Scs_spec

module Make (P : Scs_prims.Prims_intf.S) = struct
  module U = Universal.Make (P)

  type 'i t = { ucs : 'i U.t array; n_stages : int }

  let create ~name ~n ~max_requests ~stages () =
    let ucs =
      List.mapi
        (fun i make ->
          let uname = Printf.sprintf "%s.stage%d" name i in
          U.create ~name:uname ~n ~max_requests
            ~make_cons:(fun ~slot -> make ~name:(Printf.sprintf "%s.cons%d" uname slot) ~slot)
            ())
        stages
    in
    match ucs with
    | [] -> invalid_arg "Uc_object.create: no stages"
    | _ -> { ucs = Array.of_list ucs; n_stages = List.length ucs }

  type 'i phandle = {
    t : 'i t;
    pid : int;
    mutable stage : int;
    mutable h : 'i U.handle;
    mutable switches : int list;  (** lengths of transferred histories *)
  }

  let phandle t ~pid = { t; pid; stage = 0; h = U.handle t.ucs.(0) ~pid ~init:[]; switches = [] }

  let rec invoke ph req =
    match U.invoke ph.h req with
    | Universal.Committed hist -> hist
    | Universal.Aborted_with hist ->
        if ph.stage + 1 >= ph.t.n_stages then
          failwith "Uc_object.invoke: final stage aborted"
        else begin
          ph.switches <- List.length hist :: ph.switches;
          ph.stage <- ph.stage + 1;
          ph.h <- U.handle ph.t.ucs.(ph.stage) ~pid:ph.pid ~init:hist;
          invoke ph req
        end

  let stage_of ph = ph.stage
  let switch_lengths ph = List.rev ph.switches

  module Typed = struct
    type ('q, 'i, 'r) obj = { spec : ('q, 'i, 'r) Spec.t; chain : 'i t }

    let create spec chain = { spec; chain }
    let handle obj ~pid = (obj, phandle obj.chain ~pid)

    let apply (obj, ph) req =
      let hist = invoke ph req in
      match History.beta_at obj.spec hist (Request.id req) with
      | Some r -> r
      | None -> failwith "Uc_object.Typed.apply: committed history misses the request"
  end
end
