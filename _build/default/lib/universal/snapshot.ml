module Make (P : Scs_prims.Prims_intf.S) = struct
  type 'a cell = { value : 'a; seq : int; view : 'a array option }

  type 'a t = { regs : 'a cell P.reg array; n : int }

  let create ~name ~n ~init =
    {
      regs =
        Array.init n (fun i ->
            P.reg ~name:(Printf.sprintf "%s.snap[%d]" name i) { value = init; seq = 0; view = None });
      n;
    }

  let collect t = Array.map P.read t.regs

  let rec scan_loop t moved =
    let a = collect t in
    let b = collect t in
    let clean = ref true in
    let borrowed = ref None in
    for i = 0 to t.n - 1 do
      if a.(i).seq <> b.(i).seq then begin
        clean := false;
        if moved.(i) then begin
          (* component [i] moved in two distinct double-collects, so its
             second write started after our scan did: its embedded view is
             a linearizable snapshot inside our interval *)
          match b.(i).view with
          | Some v when !borrowed = None -> borrowed := Some v
          | _ -> ()
        end
        else moved.(i) <- true
      end
    done;
    if !clean then Array.map (fun c -> c.value) b
    else begin
      match !borrowed with Some v -> v | None -> scan_loop t moved
    end

  let scan t ~pid:_ = scan_loop t (Array.make t.n false)

  let update t ~pid v =
    let view = scan t ~pid in
    let cur = P.read t.regs.(pid) in
    P.write t.regs.(pid) { value = v; seq = cur.seq + 1; view = Some view }
end
