lib/universal/universal.mli: History Request Scs_consensus Scs_prims Scs_spec
