lib/universal/uc_object.mli: History Request Scs_consensus Scs_prims Scs_spec Spec Universal
