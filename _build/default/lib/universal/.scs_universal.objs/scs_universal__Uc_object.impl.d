lib/universal/uc_object.ml: Array History List Printf Request Scs_prims Scs_spec Spec Universal
