lib/universal/snapshot.mli: Scs_prims
