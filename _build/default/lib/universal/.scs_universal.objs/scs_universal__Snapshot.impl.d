lib/universal/snapshot.ml: Array Printf Scs_prims
