lib/universal/universal.ml: Array Consensus_intf History List Outcome Printf Request Scs_composable Scs_consensus Scs_prims Scs_spec Snapshot
