(** The composable universal construction (Section 4.2).

    Herlihy's universal construction with wait-free consensus replaced by
    abortable consensus. Shared state: a vector [Cons] of abortable
    consensus instances deciding one request per slot, a [Reqs] snapshot of
    per-process announcements (for helping), an [Aborted] flag, and
    per-process committed-slot counters [C] (the paper's atomic counter,
    realised as a max-register of single-writer slots so that it stays at
    consensus number 1).

    Discipline making the Abstract properties hold:
    - a process appends slot [k]'s decision to its local log, writes
      [C_i := k+1], and only then, {e before returning a commit}, re-reads
      [Aborted]; by the flag principle, an aborter that set [Aborted] and
      then reads [max_j C_j] obtains a count covering every returned
      commit;
    - recovery probes slots [0 .. count-1] — all decided — with ⊥
      proposals, reconstructing the decided prefix irrespective of local
      commit/abort outcomes (the paper's abort-history computation).

    Instances are initialised with a history (the previous instance's
    abort history): slot [k < |h_init|] is proposed [h_init(k)] as the
    inherited value, which is exactly the [init] phase of the Appendix A
    wrappers. Decisions are deduplicated positionally, so divergent init
    tails across processes collapse to one canonical log. *)

open Scs_spec

type 'i abstract_outcome =
  | Committed of 'i History.t
      (** the committed (prefix) history; the response to the request is
          [β(h, m)] *)
  | Aborted_with of 'i History.t  (** the abort history *)

module Make (P : Scs_prims.Prims_intf.S) : sig
  type 'i t
  type 'i handle

  val create :
    name:string ->
    n:int ->
    max_requests:int ->
    make_cons:(slot:int -> 'i Request.t Scs_consensus.Consensus_intf.t) ->
    unit ->
    'i t
  (** One consensus instance per slot, built by [make_cons] (e.g. all
      SplitConsensus, all AbortableBakery, or all CAS for the wait-free
      closing stage). *)

  val handle : 'i t -> pid:int -> init:'i History.t -> 'i handle
  (** A process's view of the instance. [init] is the history inherited
      from the previous instance's abort ([[]] for the first). *)

  val invoke : 'i handle -> 'i Request.t -> 'i abstract_outcome
  (** Run the construction for one request until it commits or the
      instance aborts. After an abort the handle is dead: further invokes
      return aborts with the same history. *)

  val performed : 'i handle -> 'i History.t
  (** The handle's local log of decided requests (diagnostics). *)
end
