open Scs_spec
open Scs_composable
open Scs_consensus

type 'i abstract_outcome =
  | Committed of 'i History.t
  | Aborted_with of 'i History.t

module Make (P : Scs_prims.Prims_intf.S) = struct
  module Snap = Snapshot.Make (P)

  type 'i t = {
    n : int;
    max_requests : int;
    cons : 'i Request.t Consensus_intf.t array;
    aborted : bool P.reg;
    reqs : 'i Request.t list Snap.t;
    c : int P.reg array;  (** C_i: slots process i has seen decided *)
  }

  type 'i handle = {
    t : 'i t;
    pid : int;
    init_hist : 'i Request.t array;
    mutable lperf : 'i Request.t list;  (** reversed local log (deduplicated) *)
    mutable next_slot : int;  (** slots processed; ≥ |lperf| (duplicates collapse) *)
    mutable announced : 'i Request.t list;  (** newest first *)
    mutable dead : 'i History.t option;  (** abort history once aborted *)
  }

  let create ~name ~n ~max_requests ~make_cons () =
    {
      n;
      max_requests;
      cons = Array.init max_requests (fun slot -> make_cons ~slot);
      aborted = P.reg ~name:(name ^ ".Aborted") false;
      reqs = Snap.create ~name:(name ^ ".Reqs") ~n ~init:[];
      c = Array.init n (fun i -> P.reg ~name:(Printf.sprintf "%s.C[%d]" name i) 0);
    }

  let handle t ~pid ~init =
    {
      t;
      pid;
      init_hist = Array.of_list init;
      lperf = [];
      next_slot = 0;
      announced = [];
      dead = None;
    }

  let performed h = List.rev h.lperf

  let performed_mem h req =
    let id = Request.id req in
    List.exists (fun r -> Request.id r = id) h.lperf

  let append_decided h req =
    if not (performed_mem h req) then h.lperf <- req :: h.lperf

  (* The paper's counter read at recovery: the number of slots known
     decided by anyone who might have returned a commit. *)
  let read_count h = Array.fold_left (fun acc r -> max acc (P.read r)) 0 h.t.c

  (* Recovery (Section 4.2): set the flag, read the count, rebuild the
     decided prefix by probing every slot below it. *)
  let recover_and_abort h own_req =
    P.write h.t.aborted true;
    let count = read_count h in
    let hist = ref [] in
    for k = count - 1 downto 0 do
      match Consensus_intf.probe h.t.cons.(k) ~pid:h.pid with
      | Some req -> hist := req :: !hist
      | None -> ()
    done;
    (* deduplicate positionally, keeping first occurrences *)
    let dedup =
      List.fold_left
        (fun acc r -> if List.exists (fun q -> Request.id q = Request.id r) acc then acc else r :: acc)
        [] !hist
      |> List.rev
    in
    let final =
      if List.exists (fun q -> Request.id q = Request.id own_req) dedup then dedup
      else dedup @ [ own_req ]
    in
    h.dead <- Some final;
    Aborted_with final

  (* Helping choice for slot [k]: prefer the round-robin process's oldest
     pending announcement, then our own request, then any pending
     announcement. *)
  let choose_proposal h ~slot own_req =
    let views = Snap.scan h.t.reqs ~pid:h.pid in
    let pending_of j =
      List.filter (fun r -> not (performed_mem h r)) (List.rev views.(j))
    in
    let preferred = pending_of (slot mod h.t.n) in
    match preferred with
    | r :: _ -> r
    | [] ->
        if not (performed_mem h own_req) then own_req
        else begin
          let rec first_pending j =
            if j >= h.t.n then own_req
            else begin
              match pending_of j with r :: _ -> r | [] -> first_pending (j + 1)
            end
          in
          first_pending 0
        end

  (* Commit discipline: the count was published when the deciding slot was
     processed; re-read the flag last, so an aborter that set it is
     guaranteed (flag principle) to see our count when it recovers. *)
  let finish_commit h req =
    if P.read h.t.aborted then recover_and_abort h req else Committed (performed h)

  let invoke h req =
    match h.dead with
    | Some hist -> Aborted_with hist
    | None ->
        (* announce *)
        h.announced <- req :: h.announced;
        Snap.update h.t.reqs ~pid:h.pid h.announced;
        let rec loop () =
          if performed_mem h req then
            (* decided during init replay or an earlier helping pass *)
            finish_commit h req
          else if P.read h.t.aborted then recover_and_abort h req
          else begin
            let k = h.next_slot in
            if k >= h.t.max_requests then
              failwith "Universal.invoke: slot capacity exceeded"
            else begin
              let old =
                if k < Array.length h.init_hist && not (performed_mem h h.init_hist.(k)) then
                  Some h.init_hist.(k)
                else None
              in
              let proposal = choose_proposal h ~slot:k req in
              match h.t.cons.(k).Consensus_intf.run ~pid:h.pid ~old proposal with
              | Outcome.Abort _ -> recover_and_abort h req
              | Outcome.Commit None ->
                  (* Unreachable: the wrapper's second phase proposes a
                     real value and the stages never adopt ⊥. Failing loud
                     beats looping on the slot. *)
                  failwith "Universal.invoke: consensus slot decided ⊥"
              | Outcome.Commit (Some decided) ->
                  h.next_slot <- k + 1;
                  append_decided h decided;
                  P.write h.t.c.(h.pid) h.next_slot;
                  if Request.id decided = Request.id req then finish_commit h req else loop ()
            end
          end
        in
        loop ()
end
