(** Generic objects built from composed universal-construction instances
    (Proposition 1): speculate on cheap abortable stages, fall back to a
    wait-free (CAS-based) stage, transferring the full request history on
    every switch.

    Each process holds a {!phandle} tracking its current stage; on abort
    it opens a handle on the next stage initialised with its abort history
    and re-runs its request there. With a wait-free final stage the
    composition never aborts, and by the Abstract composition theorem
    (Theorem 1) the whole chain is one Abstract — hence linearizable.

    {!Typed} interprets committed histories under a sequential
    specification to produce actual responses — the universal-construction
    TAS/queue/fetch&inc objects used as baselines in experiments T5/T6. *)

open Scs_spec

module Make (P : Scs_prims.Prims_intf.S) : sig
  module U : module type of Universal.Make (P)

  type 'i t

  val create :
    name:string ->
    n:int ->
    max_requests:int ->
    stages:(name:string -> slot:int -> 'i Request.t Scs_consensus.Consensus_intf.t) list ->
    unit ->
    'i t
  (** One universal-construction instance per stage; [stages] gives each
      instance's consensus factory (e.g. SplitConsensus, then Bakery, then
      CAS). *)

  type 'i phandle

  val phandle : 'i t -> pid:int -> 'i phandle

  val invoke : 'i phandle -> 'i Request.t -> 'i History.t
  (** Run the request through the chain until some stage commits; returns
      the commit history. Raises [Failure] if even the last stage aborts
      (impossible with a wait-free closing stage). *)

  val stage_of : 'i phandle -> int
  (** Index of the stage the process is currently using (0-based). *)

  val switch_lengths : 'i phandle -> int list
  (** Lengths of the abort histories this process transferred so far —
      the state-transfer cost of composition measured by experiment T5. *)

  module Typed : sig
    type ('q, 'i, 'r) obj

    val create : ('q, 'i, 'r) Spec.t -> 'i t -> ('q, 'i, 'r) obj
    val handle : ('q, 'i, 'r) obj -> pid:int -> ('q, 'i, 'r) obj * 'i phandle

    val apply : ('q, 'i, 'r) obj * 'i phandle -> 'i Request.t -> 'r
    (** Commit the request and evaluate its response, [β(h, m)]. *)
  end
end
