(** Module outcomes and the composition combinator.

    A safely composable module (Section 3) either commits a response or
    aborts with a switch value that initialises the next module. Composing
    [a] and [b] runs [a] and, on abort, hands the switch value to [b]
    (Theorem 2 guarantees the composition is again safely composable). *)

type ('r, 'v) t = Commit of 'r | Abort of 'v

val is_commit : ('r, 'v) t -> bool
val is_abort : ('r, 'v) t -> bool
val commit_exn : ('r, 'v) t -> 'r
val map_commit : ('r -> 's) -> ('r, 'v) t -> ('s, 'v) t

(** A module instance, reified at the value level so instances over
    different primitive backends compose uniformly. [apply] runs one
    request; [init] is the switch value inherited from the previous module
    ([None] on the first module of a composition). *)
type ('i, 'r, 'v) m = {
  m_name : string;
  m_apply : pid:int -> ?init:'v -> 'i -> ('r, 'v) t;
}

val compose : ('i, 'r, 'v) m -> ('i, 'r, 'v) m -> ('i, 'r, 'v) m
(** [compose a b]: run [a]; on [Abort v], run [b] with [~init:v]. *)

val chain : ('i, 'r, 'v) m list -> ('i, 'r, 'v) m
(** Left-to-right composition of a non-empty list. *)
