lib/composable/tas_constraint.mli: History Objects Request Scs_history Scs_spec Tas_switch Trace
