lib/composable/outcome.mli:
