lib/composable/tas_switch.mli:
