lib/composable/tas_constraint.ml: History List Request Scs_history Scs_spec Tas_switch Trace
