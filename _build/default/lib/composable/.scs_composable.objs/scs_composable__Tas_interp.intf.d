lib/composable/tas_interp.mli: History Objects Scs_history Scs_spec Tas_constraint Tas_switch Trace
