lib/composable/outcome.ml: List
