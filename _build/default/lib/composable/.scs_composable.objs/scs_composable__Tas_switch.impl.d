lib/composable/tas_switch.ml:
