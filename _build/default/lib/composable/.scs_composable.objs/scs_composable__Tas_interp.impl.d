lib/composable/tas_interp.ml: Abstract_check Array History List Objects Printf Request Scs_history Scs_spec Tas_constraint Tas_switch Trace
