(** The constraint function [M] of Definition 3, for test-and-set.

    A switch token is a pair (request, switch value). Given a token set
    [S = {(r1,v1), …, (rk,vk)}]:
    - if some token carries [W], then [M(S)] is the set of histories whose
      head is one of the [W]-requests and which contain every [rj];
    - otherwise [M(S)] is the set of non-empty histories whose head is a
      request {e not} in [S] and which contain every [rj].

    [M] is represented as a membership predicate, since the history sets
    are infinite. Equivalence classes of [≡requests(S)] over [M(S)] are
    finitely many for TAS (a history's class is determined by its head when
    [W]-tokens exist, and unique otherwise) and are enumerated
    explicitly. *)

open Scs_spec
open Scs_history

type 'i token = { t_req : 'i Request.t; t_val : Tas_switch.t }

val tokens_of_operations :
  (Objects.tas_req, Objects.tas_resp, Tas_switch.t) Trace.operation list -> Objects.tas_req token list
(** The abort tokens [aborts(τ)] of a trace's operations. *)

val init_tokens_of_operations :
  (Objects.tas_req, Objects.tas_resp, Tas_switch.t) Trace.operation list -> Objects.tas_req token list
(** The init tokens [inits(τ)]. *)

val allows : tokens:'i token list -> 'i History.t -> bool
(** History membership in [M(tokens)]. *)

type 'i eq_class =
  | Headed_by of 'i Request.t
      (** histories headed by this specific [W]-request *)
  | Free_head
      (** the single class when no token carries [W]: head is any request
          outside the token set *)
  | No_aborts  (** [aborts(τ)] empty: the abort history is ⊥ *)

val classes : tokens:'i token list -> 'i eq_class list
(** The equivalence classes [eq(tokens, M)]; [[No_aborts]] when the token
    set is empty. *)

val in_class : tokens:'i token list -> 'i eq_class -> 'i History.t -> bool
(** Class membership (implies [allows] except for [No_aborts], which only
    the empty history inhabits). *)
