type t = W | L

let to_string = function W -> "W" | L -> "L"
let equal (a : t) b = a = b
