type ('r, 'v) t = Commit of 'r | Abort of 'v

let is_commit = function Commit _ -> true | Abort _ -> false
let is_abort = function Abort _ -> true | Commit _ -> false

let commit_exn = function
  | Commit r -> r
  | Abort _ -> invalid_arg "Outcome.commit_exn: outcome is an abort"

let map_commit f = function Commit r -> Commit (f r) | Abort v -> Abort v

type ('i, 'r, 'v) m = {
  m_name : string;
  m_apply : pid:int -> ?init:'v -> 'i -> ('r, 'v) t;
}

let compose a b =
  {
    m_name = a.m_name ^ ">" ^ b.m_name;
    m_apply =
      (fun ~pid ?init req ->
        match a.m_apply ~pid ?init req with
        | Commit r -> Commit r
        | Abort v -> b.m_apply ~pid ~init:v req);
  }

let chain = function
  | [] -> invalid_arg "Outcome.chain: empty module list"
  | m :: rest -> List.fold_left compose m rest
