(** Switch values of the speculative test-and-set (Definition 3):
    [W] — "the object has not been won yet" (the aborting request is a
    candidate winner); [L] — "the aborting request has lost". *)

type t = W | L

val to_string : t -> string
val equal : t -> t -> bool
