(** Safe-composability checking for test-and-set traces (Definition 2,
    instantiated with the TAS constraint function of Definition 3).

    The checker follows the constructive proof of Lemma 4. Given a trace
    [τ] of module operations it enumerates the equivalence classes
    [eq(aborts(τ), M)] and, for each class:
    + builds the abort history [habort]: the candidate-winner set [A]
      (committed winner, W-aborts, or a pending operation invoked before
      the first loser committed — Invariant 3), headed by the class's
      request, followed by the committed losers [B] and L-aborts [C] in
      response order;
    + builds the interpretation [φ]: committed requests map to prefixes of
      [habort] (or of the winner+losers history when nothing aborted),
      aborts and inits map to [habort];
    + verifies the interpretation: [φ] constant on inits with value in
      [M(inits(τ))], constant on aborts with value [habort ∈ e],
      [β(φ(i)) = response(i)] on commits, and [φτ] satisfies the Abstract
      properties (with the [Global] abort-validity reading — an abort
      history legitimately names L-aborted requests that start later).

    If the module under test is buggy — two winners, a loser without a
    preceding candidate winner, a W-abort after a loser — no interpretation
    exists and the checker reports which construction step failed. *)

open Scs_spec
open Scs_history

type tas_op = (Objects.tas_req, Objects.tas_resp, Tas_switch.t) Trace.operation
type tas_event = (Objects.tas_req, Objects.tas_resp, Tas_switch.t) Trace.event

val check_events : tas_event array -> (unit, string) result
(** Check every equivalence class of the trace. *)

val is_safely_composable : tas_event array -> bool

val build_full_history :
  cls:Objects.tas_req Tas_constraint.eq_class ->
  init_tokens:Objects.tas_req Tas_constraint.token list ->
  tas_op list ->
  (Objects.tas_req History.t, string) result
(** Exposed for tests: the [A ++ B ++ C] history of the Lemma 4
    construction for one equivalence class. *)
