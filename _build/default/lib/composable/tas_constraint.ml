open Scs_spec
open Scs_history

type 'i token = { t_req : 'i Request.t; t_val : Tas_switch.t }

let tokens_of_operations ops =
  List.filter_map
    (fun (o : _ Trace.operation) ->
      match o.Trace.outcome with
      | Trace.Aborted { switch; _ } -> Some { t_req = o.Trace.op_req; t_val = switch }
      | _ -> None)
    ops

let init_tokens_of_operations ops =
  List.filter_map
    (fun (o : _ Trace.operation) ->
      match o.Trace.op_init with
      | Some v -> Some { t_req = o.Trace.op_req; t_val = v }
      | None -> None)
    ops

let token_ids tokens = List.map (fun t -> Request.id t.t_req) tokens

let contains_all tokens h = List.for_all (fun id -> History.mem id h) (token_ids tokens)

let w_tokens tokens = List.filter (fun t -> t.t_val = Tas_switch.W) tokens

let allows ~tokens h =
  match w_tokens tokens with
  | _ :: _ as ws -> (
      match h with
      | [] -> false
      | head :: _ ->
          List.exists (fun t -> Request.id t.t_req = Request.id head) ws && contains_all tokens h)
  | [] -> (
      match h with
      | [] -> false
      | head :: _ ->
          (not (List.mem (Request.id head) (token_ids tokens))) && contains_all tokens h)

type 'i eq_class = Headed_by of 'i Request.t | Free_head | No_aborts

let classes ~tokens =
  match tokens with
  | [] -> [ No_aborts ]
  | _ -> (
      match w_tokens tokens with
      | [] -> [ Free_head ]
      | ws -> List.map (fun t -> Headed_by t.t_req) ws)

let in_class ~tokens cls h =
  match cls with
  | No_aborts -> h = []
  | Free_head -> allows ~tokens h
  | Headed_by r -> (
      match h with
      | head :: _ -> Request.id head = Request.id r && allows ~tokens h
      | [] -> false)
