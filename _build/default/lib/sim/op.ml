type kind = Read | Write | Rmw

type 'r t = {
  kind : kind;
  obj : int;
  obj_name : string;
  info : string;
  run : unit -> 'r;
}

let kind_to_string = function Read -> "read" | Write -> "write" | Rmw -> "rmw"
