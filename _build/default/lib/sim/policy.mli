(** Schedule policies: adversaries that pick which process moves next.

    Policies are stateful closures, so every function here returns a fresh
    policy; reusing one across runs would leak state between simulations. *)

type t = Sim.t -> Sim.decision

val round_robin : unit -> t
(** Cycle over runnable processes in pid order. *)

val random : Scs_util.Rng.t -> t
(** Uniform choice among runnable processes at every turn. *)

val weighted : Scs_util.Rng.t -> float array -> t
(** Choose among runnable processes with the given per-pid weights. A pid
    with weight 0 never runs. Weights need not be normalised. *)

val sticky : Scs_util.Rng.t -> switch_prob:float -> t
(** Keep scheduling the same process; at each turn, switch to a uniformly
    random runnable process with probability [switch_prob]. [0.0] is
    essentially sequential (contention-free), [1.0] is {!random} — a
    single dial for the contention sweeps of experiment F1. *)

val solo : Sim.pid -> t
(** Run only [pid]; stop when it finishes (other processes never move). *)

val sequential : unit -> t
(** Run process 0 to completion, then 1, and so on: no contention at all. *)

val scripted : Sim.pid array -> t
(** Follow the given pid sequence, skipping entries that are not runnable;
    stop when the script is exhausted. *)

val scripted_then : Sim.pid array -> t -> t
(** Follow the script, then delegate to the fallback policy. *)

val with_crashes : (Sim.pid * int) list -> t -> t
(** [with_crashes [(p, k); ...] inner] crashes process [p] as soon as it has
    taken [k] memory steps, then behaves as [inner]. *)

val stop_when : (Sim.t -> bool) -> t -> t
(** Stop as soon as the predicate holds; otherwise delegate. *)

val pick_runnable : Sim.t -> Sim.pid option
(** Smallest runnable pid, if any (helper for custom policies). *)
