(** Contention-class detectors.

    The paper's progress conditions quantify over execution classes:
    - {e step contention} for an operation: some other process takes a
      shared-memory step within the operation's execution interval;
    - {e interval contention}: some other operation on the same object is
      pending (invoked, not yet responded) at some point of the interval.

    These detectors classify recorded executions so tests can assert, e.g.,
    "module A1 aborted ⟹ its operation ran under step contention"
    (Lemma 6). *)

type interval = {
  pid : int;
  start_ts : int;  (** clock value at invocation (steps after this count) *)
  end_ts : int;  (** clock value at response (inclusive) *)
}

val step_contended : Mem_event.t array -> interval -> bool
(** True iff another process has a memory step with
    [start_ts < ts <= end_ts]. *)

val steps_within : Mem_event.t array -> interval -> int
(** Memory steps by [interval.pid] itself inside the interval. *)

val overlap : interval -> interval -> bool
(** Two intervals of different processes overlap in real time. *)

val interval_contended : interval list -> interval -> bool
(** True iff some other process's interval in the list overlaps this one. *)
