type interval = { pid : int; start_ts : int; end_ts : int }

let step_contended events iv =
  Array.exists
    (fun (e : Mem_event.t) -> e.pid <> iv.pid && e.ts > iv.start_ts && e.ts <= iv.end_ts)
    events

let steps_within events iv =
  Array.fold_left
    (fun acc (e : Mem_event.t) ->
      if e.pid = iv.pid && e.ts > iv.start_ts && e.ts <= iv.end_ts then acc + 1 else acc)
    0 events

let overlap a b = a.pid <> b.pid && a.start_ts < b.end_ts && b.start_ts < a.end_ts

let interval_contended all iv = List.exists (fun other -> overlap iv other) all
