lib/sim/op.mli:
