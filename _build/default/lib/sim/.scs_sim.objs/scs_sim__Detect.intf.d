lib/sim/detect.mli: Mem_event
