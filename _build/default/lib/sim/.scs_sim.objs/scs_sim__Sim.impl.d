lib/sim/sim.ml: Array Effect Mem_event Op Printf Scs_util Vec
