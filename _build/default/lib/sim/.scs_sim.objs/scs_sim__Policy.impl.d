lib/sim/policy.ml: Array List Rng Scs_util Sim
