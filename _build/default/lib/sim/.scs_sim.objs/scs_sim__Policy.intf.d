lib/sim/policy.mli: Scs_util Sim
