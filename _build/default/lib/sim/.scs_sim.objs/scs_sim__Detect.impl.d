lib/sim/detect.ml: Array List Mem_event
