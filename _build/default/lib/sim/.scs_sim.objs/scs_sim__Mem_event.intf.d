lib/sim/mem_event.mli: Op
