lib/sim/explore.mli: Sim
