lib/sim/sim.mli: Mem_event
