lib/sim/explore.ml: List Policy Rng Scs_util Sim
