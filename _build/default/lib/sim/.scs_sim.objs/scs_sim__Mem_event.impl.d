lib/sim/mem_event.ml: Op Printf
