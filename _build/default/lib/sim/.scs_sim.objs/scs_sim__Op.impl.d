lib/sim/op.ml:
