(** Low-level memory trace events: one per executed shared-memory step. *)

type t = {
  ts : int;  (** global logical time: value of the step counter after the step *)
  pid : int;
  kind : Op.kind;
  obj : int;
  obj_name : string;
  info : string;
}

val to_string : t -> string
