(** Shared-memory operation descriptors.

    Every primitive operation an algorithm performs against simulated shared
    memory is reified as a value of this type. The simulator's scheduler
    executes the [run] closure atomically, which is exactly the atomicity
    granularity of the paper's model: one shared-memory step per scheduler
    turn, local computation free. *)

type kind =
  | Read
  | Write
  | Rmw  (** atomic read-modify-write: TAS, CAS, fetch&inc, swap *)

type 'r t = {
  kind : kind;
  obj : int;  (** unique id of the accessed base object *)
  obj_name : string;
  info : string;  (** human-readable description for traces *)
  run : unit -> 'r;  (** executed atomically by the scheduler *)
}

val kind_to_string : kind -> string
