type t = {
  ts : int;
  pid : int;
  kind : Op.kind;
  obj : int;
  obj_name : string;
  info : string;
}

let to_string e =
  Printf.sprintf "[%6d] p%d %-5s %s%s" e.ts e.pid (Op.kind_to_string e.kind) e.obj_name
    (if e.info = "" then "" else " " ^ e.info)
