open Scs_util

type outcome = { schedules : int; truncated : bool }

let exhaustive ?(max_schedules = 200_000) ?(max_depth = 10_000) ~n ~setup ~check () =
  let count = ref 0 in
  let truncated = ref false in
  (* Replay [prefix] (a reversed pid list) on a fresh simulator and return
     it together with its runnable set. *)
  let replay prefix =
    let sim = Sim.create ~n () in
    setup sim;
    List.iter (fun p -> if Sim.is_runnable sim p then Sim.step sim p) (List.rev prefix);
    sim
  in
  let rec dfs prefix depth =
    if !count >= max_schedules then truncated := true
    else begin
      let sim = replay prefix in
      match Sim.runnable sim with
      | [] ->
          incr count;
          check sim (List.rev prefix)
      | rs ->
          if depth >= max_depth then begin
            incr count;
            truncated := true;
            check sim (List.rev prefix)
          end
          else List.iter (fun p -> dfs (p :: prefix) (depth + 1)) rs
    end
  in
  dfs [] 0;
  { schedules = !count; truncated = !truncated }

let random_runs ?(runs = 200) ?(seed = 42) ~n ~setup ~check () =
  let rng = Rng.create seed in
  for _ = 1 to runs do
    let sim = Sim.create ~n () in
    setup sim;
    let policy = Policy.random (Rng.split rng) in
    Sim.run sim policy;
    check sim
  done
