(** Bounded model checking of simulated algorithms.

    [exhaustive] enumerates every interleaving (schedule) of the spawned
    processes up to a depth and node budget, re-running the simulation from
    scratch for each prefix (continuations cannot be cloned, so replay is the
    only sound way to branch). For the small algorithms of the paper — the
    obstruction-free TAS module, the splitter, 2-process consensus — this
    gives complete coverage of all executions with 2–3 processes. *)

type outcome = {
  schedules : int;  (** maximal (or depth-truncated) schedules checked *)
  truncated : bool;  (** true if a budget stopped the enumeration early *)
}

val exhaustive :
  ?max_schedules:int ->
  ?max_depth:int ->
  n:int ->
  setup:(Sim.t -> unit) ->
  check:(Sim.t -> Sim.pid list -> unit) ->
  unit ->
  outcome
(** [setup] must create shared objects and spawn all processes on the fresh
    simulator it receives. [check sim schedule] is called after each maximal
    run ([schedule] is the executed pid sequence); it should raise to report
    a violation. Defaults: [max_schedules = 200_000], [max_depth = 10_000]. *)

val random_runs :
  ?runs:int ->
  ?seed:int ->
  n:int ->
  setup:(Sim.t -> unit) ->
  check:(Sim.t -> unit) ->
  unit ->
  unit
(** [runs] (default 200) random-schedule simulations with distinct streams
    derived from [seed] (default 42). *)
