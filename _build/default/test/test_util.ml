(* Unit tests for scs_util: RNG determinism, statistics, vectors, tables. *)

open Scs_util

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next64 a) (Rng.next64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.next64 a = Rng.next64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_rng_int_bounds () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let x = Rng.int r 17 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 17)
  done

let test_rng_int_in () =
  let r = Rng.create 4 in
  for _ = 1 to 1000 do
    let x = Rng.int_in r (-3) 5 in
    Alcotest.(check bool) "in range" true (x >= -3 && x <= 5)
  done

let test_rng_float_unit () =
  let r = Rng.create 5 in
  for _ = 1 to 1000 do
    let x = Rng.float r in
    Alcotest.(check bool) "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let test_rng_bernoulli_extremes () =
  let r = Rng.create 6 in
  for _ = 1 to 50 do
    Alcotest.(check bool) "p=0 never" false (Rng.bernoulli r 0.0)
  done;
  for _ = 1 to 50 do
    Alcotest.(check bool) "p=1 always" true (Rng.bernoulli r 1.0)
  done

let test_rng_split_independent () =
  let parent = Rng.create 9 in
  let child = Rng.split parent in
  let c1 = Rng.next64 child in
  (* recreate: same parent state sequence gives same child *)
  let parent2 = Rng.create 9 in
  let child2 = Rng.split parent2 in
  Alcotest.(check int64) "split deterministic" c1 (Rng.next64 child2)

let test_rng_shuffle_permutes () =
  let r = Rng.create 10 in
  let a = Array.init 20 (fun i -> i) in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 20 (fun i -> i)) sorted

let test_rng_bool_balanced () =
  let r = Rng.create 11 in
  let trues = ref 0 in
  for _ = 1 to 10_000 do
    if Rng.bool r then incr trues
  done;
  Alcotest.(check bool) "roughly balanced" true (!trues > 4500 && !trues < 5500)

let test_stats_mean () =
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |])

let test_stats_stddev () =
  let sd = Stats.stddev [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  Alcotest.(check (float 1e-6)) "sample sd" 2.13809 sd

let test_stats_percentile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  Alcotest.(check (float 1e-9)) "median" 3.0 (Stats.percentile xs 50.0);
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Stats.percentile xs 0.0);
  Alcotest.(check (float 1e-9)) "p100" 5.0 (Stats.percentile xs 100.0)

let test_stats_percentile_unsorted () =
  let xs = [| 5.0; 1.0; 3.0; 2.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "median of unsorted" 3.0 (Stats.percentile xs 50.0)

let test_stats_summary () =
  let s = Stats.summarize_ints [| 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 |] in
  Alcotest.(check int) "n" 10 s.Stats.n;
  Alcotest.(check (float 1e-9)) "mean" 5.5 s.Stats.mean;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 10.0 s.Stats.max

let test_stats_mean_ci95 () =
  let m, hw = Stats.mean_ci95 [| 10.0; 10.0; 10.0; 10.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 10.0 m;
  Alcotest.(check (float 1e-9)) "zero spread" 0.0 hw;
  let m1, hw1 = Stats.mean_ci95 [| 0.0; 10.0 |] in
  Alcotest.(check (float 1e-9)) "mean of pair" 5.0 m1;
  Alcotest.(check bool) "positive half-width" true (hw1 > 0.0);
  let _, hw_single = Stats.mean_ci95 [| 1.0 |] in
  Alcotest.(check (float 1e-9)) "n=1 half-width" 0.0 hw_single

let test_stats_histogram () =
  let h = Stats.histogram ~buckets:2 [| 0.0; 1.0; 9.0; 10.0 |] in
  Alcotest.(check int) "buckets" 2 (List.length h);
  let total = List.fold_left (fun acc (_, _, c) -> acc + c) 0 h in
  Alcotest.(check int) "all samples" 4 total

let test_vec_push_get () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.push v i
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get 42" 42 (Vec.get v 42);
  Alcotest.(check int) "last" (Some 99 |> Option.get) (Option.get (Vec.last v))

let test_vec_set () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  Vec.set v 1 42;
  Alcotest.(check (list int)) "set" [ 1; 42; 3 ] (Vec.to_list v)

let test_vec_bounds () =
  let v = Vec.of_list [ 1 ] in
  Alcotest.check_raises "get oob" (Invalid_argument "Vec.get: index out of bounds") (fun () ->
      ignore (Vec.get v 1))

let test_vec_clear () =
  let v = Vec.of_list [ 1; 2 ] in
  Vec.clear v;
  Alcotest.(check int) "cleared" 0 (Vec.length v);
  Alcotest.(check bool) "last none" true (Vec.last v = None)

let test_vec_fold () =
  let v = Vec.of_list [ 1; 2; 3; 4 ] in
  Alcotest.(check int) "fold sum" 10 (Vec.fold_left ( + ) 0 v)

let test_table_render () =
  let s = Table.render ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333"; "4" ] ] in
  Alcotest.(check bool) "contains rows" true
    (String.length s > 0
    && String.split_on_char '\n' s |> List.length >= 4)

let test_chart_bar () =
  let b = Chart.bar ~width:10 ~max_value:10.0 5.0 in
  Alcotest.(check int) "width" 10 (String.length b);
  Alcotest.(check bool) "half filled" true (String.contains b '#')

let tests =
  [
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng seeds differ" `Quick test_rng_seeds_differ;
    Alcotest.test_case "rng int bounds" `Quick test_rng_int_bounds;
    Alcotest.test_case "rng int_in bounds" `Quick test_rng_int_in;
    Alcotest.test_case "rng float unit interval" `Quick test_rng_float_unit;
    Alcotest.test_case "rng bernoulli extremes" `Quick test_rng_bernoulli_extremes;
    Alcotest.test_case "rng split deterministic" `Quick test_rng_split_independent;
    Alcotest.test_case "rng shuffle permutes" `Quick test_rng_shuffle_permutes;
    Alcotest.test_case "rng bool balanced" `Quick test_rng_bool_balanced;
    Alcotest.test_case "stats mean" `Quick test_stats_mean;
    Alcotest.test_case "stats stddev" `Quick test_stats_stddev;
    Alcotest.test_case "stats percentile" `Quick test_stats_percentile;
    Alcotest.test_case "stats percentile unsorted" `Quick test_stats_percentile_unsorted;
    Alcotest.test_case "stats summary" `Quick test_stats_summary;
    Alcotest.test_case "stats mean ci95" `Quick test_stats_mean_ci95;
    Alcotest.test_case "stats histogram" `Quick test_stats_histogram;
    Alcotest.test_case "vec push/get" `Quick test_vec_push_get;
    Alcotest.test_case "vec set" `Quick test_vec_set;
    Alcotest.test_case "vec bounds" `Quick test_vec_bounds;
    Alcotest.test_case "vec clear" `Quick test_vec_clear;
    Alcotest.test_case "vec fold" `Quick test_vec_fold;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "chart bar" `Quick test_chart_bar;
  ]
