(* Verification of the composable universal construction (Section 4):
   - the AADGMS snapshot substrate (validity + total order of scans);
   - single-instance universal construction over each consensus algorithm;
   - Abstract properties (Definition 1) on recorded stage traces;
   - the composition (Proposition 1): split → bakery → CAS chain is
     wait-free and linearizable for fetch&inc and queue objects;
   - the state-transfer cost (abort histories grow with committed work). *)

open Scs_spec
open Scs_history
open Scs_sim
open Scs_workload

(* ---- snapshot -------------------------------------------------------- *)

let test_snapshot_solo () =
  let sim = Sim.create ~n:1 () in
  let module P = (val Scs_prims.Sim_prims.make sim) in
  let module S = Scs_universal.Snapshot.Make (P) in
  let s = S.create ~name:"s" ~n:2 ~init:0 in
  let views = ref [] in
  Sim.spawn sim 0 (fun () ->
      views := S.scan s ~pid:0 :: !views;
      S.update s ~pid:0 5;
      views := S.scan s ~pid:0 :: !views);
  Sim.run sim (Policy.round_robin ());
  match List.rev !views with
  | [ v1; v2 ] ->
      Alcotest.(check (array int)) "initial" [| 0; 0 |] v1;
      Alcotest.(check (array int)) "after update" [| 5; 0 |] v2
  | _ -> Alcotest.fail "expected two views"

(* every pair of scans must be pointwise comparable when components are
   monotone counters: that is exactly snapshot linearizability here *)
let scans_comparable scans =
  let le a b = Array.for_all2 (fun x y -> x <= y) a b in
  List.for_all
    (fun a -> List.for_all (fun b -> le a b || le b a) scans)
    scans

let test_snapshot_random_linearizable () =
  for seed = 1 to 60 do
    let n = 3 in
    let sim = Sim.create ~n () in
    let module P = (val Scs_prims.Sim_prims.make sim) in
    let module S = Scs_universal.Snapshot.Make (P) in
    let s = S.create ~name:"s" ~n ~init:0 in
    let scans = ref [] in
    for pid = 0 to n - 1 do
      Sim.spawn sim pid (fun () ->
          for k = 1 to 3 do
            S.update s ~pid k;
            scans := S.scan s ~pid :: !scans
          done)
    done;
    Sim.run sim (Policy.random (Scs_util.Rng.create seed));
    if not (scans_comparable !scans) then
      Alcotest.failf "incomparable scans at seed %d" seed;
    (* validity: own component reflects the last update *)
    ()
  done

let test_snapshot_update_embeds_view () =
  (* a scanner that observes a component move twice borrows a valid view;
     exercised under heavy interleaving *)
  for seed = 1 to 40 do
    let n = 2 in
    let sim = Sim.create ~n () in
    let module P = (val Scs_prims.Sim_prims.make sim) in
    let module S = Scs_universal.Snapshot.Make (P) in
    let s = S.create ~name:"s" ~n ~init:0 in
    let scans = ref [] in
    Sim.spawn sim 0 (fun () ->
        for k = 1 to 6 do
          S.update s ~pid:0 k
        done);
    Sim.spawn sim 1 (fun () ->
        for _ = 1 to 4 do
          scans := S.scan s ~pid:1 :: !scans
        done);
    Sim.run sim (Policy.random (Scs_util.Rng.create seed));
    (* scans of p1 must be monotone in p0's component *)
    let rec monotone = function
      | a :: (b :: _ as rest) ->
          (* !scans is newest-first *)
          b.(0) <= a.(0) && monotone rest
      | _ -> true
    in
    if not (monotone !scans) then Alcotest.failf "non-monotone scans at seed %d" seed
  done

let test_snapshot_wait_free () =
  (* a scanner completes even while the other component updates forever
     within the run: bounded double collects via borrowed views *)
  let n = 2 in
  let sim = Sim.create ~max_steps:200_000 ~n () in
  let module P = (val Scs_prims.Sim_prims.make sim) in
  let module S = Scs_universal.Snapshot.Make (P) in
  let s = S.create ~name:"s" ~n ~init:0 in
  let scan_done = ref false in
  Sim.spawn sim 0 (fun () ->
      for k = 1 to 200 do
        S.update s ~pid:0 k
      done);
  Sim.spawn sim 1 (fun () ->
      ignore (S.scan s ~pid:1);
      scan_done := true);
  (* adversarial: give the updater 3 turns per scanner turn *)
  let count = ref 0 in
  Sim.run sim (fun sm ->
      incr count;
      let want = if !count mod 4 = 0 then 1 else 0 in
      if Sim.is_runnable sm want then Sim.Sched want
      else if Sim.is_runnable sm (1 - want) then Sim.Sched (1 - want)
      else Sim.Stop);
  Alcotest.(check bool) "scan completed" true !scan_done

(* ---- universal construction: single instance -------------------------- *)

let fai_payload ~pid:_ ~k:_ = Objects.Fai_inc

let test_uc_cas_fai () =
  (* wait-free single stage: every process gets a distinct counter value *)
  for seed = 1 to 30 do
    let r =
      Uc_run.run ~seed ~n:4 ~ops_per_proc:3 ~stages:[ Uc_run.S_cas ] ~policy:Policy.random
        ~gen_payload:fai_payload ()
    in
    Alcotest.(check int) "all commits" 12 (List.length r.Uc_run.commit_hists);
    (match Uc_run.check_responses Objects.fetch_and_increment r with
    | Ok () -> ()
    | Error e -> Alcotest.failf "seed %d: %s" seed e);
    (* Abstract properties, strict validity *)
    Array.iter
      (fun evs ->
        match Abstract_check.check evs with
        | Ok () -> ()
        | Error e -> Alcotest.failf "abstract violation at seed %d: %s" seed e)
      r.Uc_run.stage_events
  done

let test_uc_split_solo () =
  let r =
    Uc_run.run ~n:3 ~ops_per_proc:4 ~stages:[ Uc_run.S_split; Uc_run.S_cas ]
      ~policy:(fun _ -> Policy.solo 0) ~gen_payload:fai_payload ()
  in
  (* the solo process commits everything on the cheap stage *)
  Alcotest.(check int) "4 commits" 4 (List.length r.Uc_run.commit_hists);
  Alcotest.(check int) "stays on stage 0" 0 r.Uc_run.final_stages.(0);
  Alcotest.(check (list int)) "no switches" []
    (List.map snd r.Uc_run.switch_lens)

let test_uc_split_sequential () =
  let r =
    Uc_run.run ~n:4 ~ops_per_proc:3 ~stages:[ Uc_run.S_split; Uc_run.S_cas ]
      ~policy:(fun _ -> Policy.sequential ()) ~gen_payload:fai_payload ()
  in
  Alcotest.(check int) "all commit" 12 (List.length r.Uc_run.commit_hists);
  match Uc_run.check_responses Objects.fetch_and_increment r with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_uc_composed_random () =
  for seed = 1 to 25 do
    let r =
      Uc_run.run ~seed ~n:3 ~ops_per_proc:3
        ~stages:[ Uc_run.S_split; Uc_run.S_bakery; Uc_run.S_cas ]
        ~policy:Policy.random ~gen_payload:fai_payload ()
    in
    Alcotest.(check int) "wait-free: all commit" 9 (List.length r.Uc_run.commit_hists);
    (match Uc_run.check_responses Objects.fetch_and_increment r with
    | Ok () -> ()
    | Error e -> Alcotest.failf "seed %d: %s" seed e);
    Array.iter
      (fun evs ->
        match Abstract_check.check evs with
        | Ok () -> ()
        | Error e -> Alcotest.failf "abstract violation at seed %d: %s" seed e)
      r.Uc_run.stage_events
  done

(* Proposition 2, executable: a wait-free Abstract implementation of a
   non-trivial type solves consensus — decide on the payload of the first
   request in one's commit history (Commit Order makes it unique). *)
let test_prop2_abstract_solves_consensus () =
  for seed = 1 to 40 do
    let n = 4 in
    let r =
      Uc_run.run ~seed ~n ~ops_per_proc:1
        ~stages:[ Uc_run.S_cas ]
        ~policy:Policy.random
        ~gen_payload:(fun ~pid ~k:_ -> Objects.Enqueue (1000 + pid))
        ()
    in
    let decisions =
      List.filter_map
        (fun (_, hist) ->
          match hist with
          | first :: _ -> (
              match Request.payload first with Objects.Enqueue v -> Some v | _ -> None)
          | [] -> None)
        r.Uc_run.commit_hists
    in
    (match decisions with
    | [] -> Alcotest.failf "no decisions at seed %d" seed
    | d :: rest ->
        if not (List.for_all (fun x -> x = d) rest) then
          Alcotest.failf "Prop 2 reduction disagreed at seed %d" seed;
        if d < 1000 || d >= 1000 + n then Alcotest.failf "invalid at seed %d" seed)
  done

let test_uc_state_transfer_grows () =
  (* T5's mechanism: the more requests committed before contention forces a
     switch, the longer the transferred history. Mostly-sequential sticky
     schedules let work accumulate before the occasional collision. *)
  let switch_lens ~ops_per_proc =
    let lens = ref [] in
    for seed = 1 to 30 do
      let r =
        Uc_run.run ~seed ~n:3 ~ops_per_proc
          ~stages:[ Uc_run.S_split; Uc_run.S_cas ]
          ~policy:(fun rng -> Policy.sticky rng ~switch_prob:0.05)
          ~gen_payload:fai_payload ()
      in
      lens := List.map snd r.Uc_run.switch_lens @ !lens
    done;
    !lens
  in
  let mean l =
    if l = [] then 0.0
    else float_of_int (List.fold_left ( + ) 0 l) /. float_of_int (List.length l)
  in
  let small = switch_lens ~ops_per_proc:1 in
  let large = switch_lens ~ops_per_proc:8 in
  Alcotest.(check bool) "switches happen" true (small <> []);
  Alcotest.(check bool) "longer runs transfer more state (mean)" true
    (mean large > mean small);
  Alcotest.(check bool) "longer runs transfer more state (max)" true
    (List.fold_left max 0 large > List.fold_left max 0 small)

(* ---- typed objects over the composed chain ---------------------------- *)

let run_typed_queue ~seed ~policy =
  let n = 3 in
  let sim = Sim.create ~max_steps:20_000_000 ~n () in
  let module P = (val Scs_prims.Sim_prims.make sim) in
  let module UO = Scs_universal.Uc_object.Make (P) in
  let module SC = Scs_consensus.Split_consensus.Make (P) in
  let module CC = Scs_consensus.Cas_consensus.Make (P) in
  let stages =
    [
      (fun ~name ~slot:_ -> SC.instance (SC.create ~name ()));
      (fun ~name ~slot:_ -> CC.instance (CC.create ~name ()));
    ]
  in
  let chain = UO.create ~name:"q" ~n ~max_requests:64 ~stages () in
  let obj = UO.Typed.create Objects.queue chain in
  let gen = Request.Gen.create () in
  let tr : (Objects.queue_req, Objects.queue_resp, unit) Trace.t =
    Trace.create ~clock:(fun () -> Sim.clock sim) ()
  in
  for pid = 0 to n - 1 do
    Sim.spawn sim pid (fun () ->
        let h = UO.Typed.handle obj ~pid in
        for k = 1 to 3 do
          let payload =
            if k mod 2 = 1 then Objects.Enqueue ((10 * pid) + k) else Objects.Dequeue
          in
          let req = Request.Gen.fresh gen payload in
          Trace.invoke tr ~pid req;
          let resp = UO.Typed.apply h req in
          Trace.commit tr ~pid req resp
        done)
  done;
  Sim.run sim (policy (Scs_util.Rng.create seed));
  Trace.events tr

let test_typed_queue_linearizable () =
  for seed = 1 to 15 do
    let evs = run_typed_queue ~seed ~policy:Policy.random in
    if not (Linearize.check_events Objects.queue evs) then
      Alcotest.failf "queue not linearizable at seed %d" seed
  done

let test_typed_queue_sequential_fifo () =
  let evs = run_typed_queue ~seed:1 ~policy:(fun _ -> Policy.sequential ()) in
  Alcotest.(check bool) "sequential queue linearizable" true
    (Linearize.check_events Objects.queue evs)

let tests =
  [
    Alcotest.test_case "snapshot solo" `Quick test_snapshot_solo;
    Alcotest.test_case "snapshot scans comparable" `Quick test_snapshot_random_linearizable;
    Alcotest.test_case "snapshot monotone under interference" `Quick
      test_snapshot_update_embeds_view;
    Alcotest.test_case "snapshot wait-free" `Quick test_snapshot_wait_free;
    Alcotest.test_case "uc: cas-stage fetch&inc" `Quick test_uc_cas_fai;
    Alcotest.test_case "uc: split stage solo" `Quick test_uc_split_solo;
    Alcotest.test_case "uc: split stage sequential" `Quick test_uc_split_sequential;
    Alcotest.test_case "uc: composed chain random" `Quick test_uc_composed_random;
    Alcotest.test_case "uc: Prop 2 — Abstract solves consensus" `Quick
      test_prop2_abstract_solves_consensus;
    Alcotest.test_case "uc: state transfer grows (T5)" `Quick test_uc_state_transfer_grows;
    Alcotest.test_case "uc: typed queue linearizable" `Quick test_typed_queue_linearizable;
    Alcotest.test_case "uc: typed queue sequential" `Quick test_typed_queue_sequential_fifo;
  ]
