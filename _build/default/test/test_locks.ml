(* Locks built on the TAS objects: mutual exclusion on the simulator, and
   the biased-lock cost profile (registers only while uncontended). *)

open Scs_sim

let test_ttas_mutual_exclusion () =
  for seed = 1 to 40 do
    let n = 3 in
    let sim = Sim.create ~max_steps:200_000 ~n () in
    let module P = (val Scs_prims.Sim_prims.make sim) in
    let module L = Scs_tas.Locks.Make (P) in
    let lock = L.Ttas.create ~name:"l" () in
    let in_cs = ref 0 in
    let max_in_cs = ref 0 in
    let shared = Sim.reg sim ~name:"shared" 0 in
    for pid = 0 to n - 1 do
      Sim.spawn sim pid (fun () ->
          for _ = 1 to 3 do
            L.Ttas.acquire lock;
            incr in_cs;
            if !in_cs > !max_in_cs then max_in_cs := !in_cs;
            (* a critical section of two memory steps *)
            let v = Sim.read shared in
            Sim.write shared (v + 1);
            decr in_cs;
            L.Ttas.release lock
          done)
    done;
    Sim.run sim (Policy.random (Scs_util.Rng.create seed));
    Alcotest.(check int) (Printf.sprintf "mutual exclusion at seed %d" seed) 1 !max_in_cs
  done

let test_ttas_try_acquire () =
  let sim = Sim.create ~n:1 () in
  let module P = (val Scs_prims.Sim_prims.make sim) in
  let module L = Scs_tas.Locks.Make (P) in
  let lock = L.Ttas.create ~name:"l" () in
  let r = ref [] in
  Sim.spawn sim 0 (fun () ->
      r := L.Ttas.try_acquire lock :: !r;
      r := L.Ttas.try_acquire lock :: !r;
      L.Ttas.release lock;
      r := L.Ttas.try_acquire lock :: !r);
  Sim.run sim (Policy.round_robin ());
  Alcotest.(check (list bool)) "try semantics" [ true; false; true ] !r

let test_speculative_lock_mutual_exclusion () =
  for seed = 1 to 40 do
    let n = 3 in
    let sim = Sim.create ~max_steps:400_000 ~n () in
    let module P = (val Scs_prims.Sim_prims.make sim) in
    let module L = Scs_tas.Locks.Make (P) in
    let lock = L.Speculative.create ~name:"l" ~rounds:64 () in
    let in_cs = ref 0 in
    let violations = ref 0 in
    for pid = 0 to n - 1 do
      Sim.spawn sim pid (fun () ->
          let h = L.Speculative.handle lock ~pid in
          for _ = 1 to 3 do
            L.Speculative.acquire h;
            incr in_cs;
            if !in_cs > 1 then incr violations;
            Sim.pause sim;
            decr in_cs;
            L.Speculative.release h
          done)
    done;
    Sim.run sim (Policy.random (Scs_util.Rng.create seed));
    Alcotest.(check int) (Printf.sprintf "mutual exclusion at seed %d" seed) 0 !violations
  done

let test_speculative_lock_uncontended_no_rmw () =
  (* the biased-lock claim: a lone owner never touches an RMW object *)
  let sim = Sim.create ~n:1 () in
  let module P = (val Scs_prims.Sim_prims.make sim) in
  let module L = Scs_tas.Locks.Make (P) in
  let lock = L.Speculative.create ~name:"l" ~rounds:32 () in
  Sim.spawn sim 0 (fun () ->
      let h = L.Speculative.handle lock ~pid:0 in
      for _ = 1 to 10 do
        L.Speculative.acquire h;
        L.Speculative.release h
      done);
  Sim.run sim (Policy.round_robin ());
  Alcotest.(check int) "no RMW when uncontended" 0 (Sim.rmws_of sim 0)

let test_ttas_uncontended_pays_rmw () =
  (* the baseline comparison: TTAS pays one AWAR per acquisition *)
  let sim = Sim.create ~n:1 () in
  let module P = (val Scs_prims.Sim_prims.make sim) in
  let module L = Scs_tas.Locks.Make (P) in
  let lock = L.Ttas.create ~name:"l" () in
  Sim.spawn sim 0 (fun () ->
      for _ = 1 to 10 do
        L.Ttas.acquire lock;
        L.Ttas.release lock
      done);
  Sim.run sim (Policy.round_robin ());
  Alcotest.(check int) "one RMW per acquire" 10 (Sim.rmws_of sim 0)

let tests =
  [
    Alcotest.test_case "ttas mutual exclusion" `Quick test_ttas_mutual_exclusion;
    Alcotest.test_case "ttas try_acquire" `Quick test_ttas_try_acquire;
    Alcotest.test_case "speculative lock mutual exclusion" `Quick
      test_speculative_lock_mutual_exclusion;
    Alcotest.test_case "speculative lock: no RMW uncontended" `Quick
      test_speculative_lock_uncontended_no_rmw;
    Alcotest.test_case "ttas: RMW per acquire" `Quick test_ttas_uncontended_pays_rmw;
  ]
