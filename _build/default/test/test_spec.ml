(* Tests for sequential specifications, histories and β. *)

open Scs_spec

let req id payload = Request.make id payload

let test_tas_spec () =
  let q1, r1 = Objects.tas.Spec.apply Objects.tas.Spec.init Objects.Test_and_set in
  Alcotest.(check bool) "first wins" true (r1 = Objects.Winner);
  let _, r2 = Objects.tas.Spec.apply q1 Objects.Test_and_set in
  Alcotest.(check bool) "second loses" true (r2 = Objects.Loser)

let test_resettable_tas_spec () =
  let s = Objects.resettable_tas in
  let q, r = s.Spec.apply s.Spec.init Objects.R_test_and_set in
  Alcotest.(check bool) "win" true (r = Objects.R_winner);
  let q, r = s.Spec.apply q Objects.R_test_and_set in
  Alcotest.(check bool) "lose" true (r = Objects.R_loser);
  let q, r = s.Spec.apply q Objects.R_reset in
  Alcotest.(check bool) "reset ok" true (r = Objects.R_ok);
  let _, r = s.Spec.apply q Objects.R_test_and_set in
  Alcotest.(check bool) "win again" true (r = Objects.R_winner)

let test_queue_spec () =
  let s = Objects.queue in
  let q, _ = s.Spec.apply s.Spec.init (Objects.Enqueue 1) in
  let q, _ = s.Spec.apply q (Objects.Enqueue 2) in
  let q, r = s.Spec.apply q Objects.Dequeue in
  Alcotest.(check bool) "fifo" true (r = Objects.Q_dequeued (Some 1));
  let q, r = s.Spec.apply q Objects.Dequeue in
  Alcotest.(check bool) "fifo 2" true (r = Objects.Q_dequeued (Some 2));
  let _, r = s.Spec.apply q Objects.Dequeue in
  Alcotest.(check bool) "empty" true (r = Objects.Q_dequeued None)

let test_fai_spec () =
  let s = Objects.fetch_and_increment in
  let q, r = s.Spec.apply s.Spec.init Objects.Fai_inc in
  Alcotest.(check bool) "returns old" true (r = Objects.Fai_value 0);
  let _, r = s.Spec.apply q Objects.Fai_read in
  Alcotest.(check bool) "incremented" true (r = Objects.Fai_value 1)

let test_consensus_spec () =
  let s = Objects.consensus in
  let q, r = s.Spec.apply s.Spec.init (Objects.Propose 5) in
  Alcotest.(check bool) "decides first" true (r = Objects.Decided 5);
  let _, r = s.Spec.apply q (Objects.Propose 9) in
  Alcotest.(check bool) "sticks" true (r = Objects.Decided 5)

let test_history_no_dups () =
  let h = [ req 1 Objects.Test_and_set; req 2 Objects.Test_and_set ] in
  Alcotest.(check bool) "no dups" true (History.no_dups h);
  let bad = h @ [ req 1 Objects.Test_and_set ] in
  Alcotest.(check bool) "dup detected" false (History.no_dups bad)

let test_history_prefix () =
  let a = [ req 1 Objects.Test_and_set ] in
  let b = a @ [ req 2 Objects.Test_and_set ] in
  Alcotest.(check bool) "prefix" true (History.is_prefix a b);
  Alcotest.(check bool) "not prefix" false (History.is_prefix b a);
  Alcotest.(check bool) "strict" true (History.strict_prefix a b);
  Alcotest.(check bool) "self prefix" true (History.is_prefix b b);
  Alcotest.(check bool) "self not strict" false (History.strict_prefix b b)

let test_history_common_prefix () =
  let a = [ req 1 0; req 2 0; req 3 0 ] in
  let b = [ req 1 0; req 2 0; req 4 0 ] in
  Alcotest.(check (list int)) "common" [ 1; 2 ] (History.ids (History.common_prefix a b))

let test_beta_tas () =
  let h = [ req 1 Objects.Test_and_set; req 2 Objects.Test_and_set ] in
  Alcotest.(check bool) "beta = last" true (History.beta Objects.tas h = Some Objects.Loser);
  Alcotest.(check bool) "beta at head" true
    (History.beta_at Objects.tas h 1 = Some Objects.Winner);
  Alcotest.(check bool) "beta at tail" true
    (History.beta_at Objects.tas h 2 = Some Objects.Loser);
  Alcotest.(check bool) "beta missing" true (History.beta_at Objects.tas h 7 = None);
  Alcotest.(check bool) "beta empty" true (History.beta Objects.tas [] = None)

let test_equiv_tas () =
  (* two TAS histories over the same winner are ≡ on their common ids *)
  let h1 = [ req 1 Objects.Test_and_set; req 2 Objects.Test_and_set; req 3 Objects.Test_and_set ] in
  let h2 = [ req 1 Objects.Test_and_set; req 3 Objects.Test_and_set; req 2 Objects.Test_and_set ] in
  Alcotest.(check bool) "equiv same head" true
    (History.equiv Objects.tas ~ids:[ 1; 2; 3 ] h1 h2);
  (* different heads: responses of id 2 differ *)
  let h3 = [ req 2 Objects.Test_and_set; req 1 Objects.Test_and_set; req 3 Objects.Test_and_set ] in
  Alcotest.(check bool) "not equiv different head" false
    (History.equiv Objects.tas ~ids:[ 1; 2; 3 ] h1 h3)

let test_equiv_queue_order_matters () =
  let h1 = [ req 1 (Objects.Enqueue 1); req 2 (Objects.Enqueue 2) ] in
  let h2 = [ req 2 (Objects.Enqueue 2); req 1 (Objects.Enqueue 1) ] in
  Alcotest.(check bool) "queue order distinguishes" false
    (History.equiv Objects.queue ~ids:[ 1; 2 ] h1 h2)

let test_run_responses () =
  let h = [ req 1 (Objects.Enqueue 7); req 2 Objects.Dequeue ] in
  let final, resps = History.run Objects.queue h in
  Alcotest.(check (list int)) "final state" [] final;
  Alcotest.(check int) "two responses" 2 (List.length resps)

let test_request_gen () =
  let g = Request.Gen.create () in
  let a = Request.Gen.fresh g () in
  let b = Request.Gen.fresh g () in
  Alcotest.(check bool) "ids fresh" true (Request.id a <> Request.id b)

let tests =
  [
    Alcotest.test_case "tas spec" `Quick test_tas_spec;
    Alcotest.test_case "resettable tas spec" `Quick test_resettable_tas_spec;
    Alcotest.test_case "queue spec" `Quick test_queue_spec;
    Alcotest.test_case "fai spec" `Quick test_fai_spec;
    Alcotest.test_case "consensus spec" `Quick test_consensus_spec;
    Alcotest.test_case "history no dups" `Quick test_history_no_dups;
    Alcotest.test_case "history prefix" `Quick test_history_prefix;
    Alcotest.test_case "history common prefix" `Quick test_history_common_prefix;
    Alcotest.test_case "beta on tas" `Quick test_beta_tas;
    Alcotest.test_case "equiv on tas" `Quick test_equiv_tas;
    Alcotest.test_case "equiv on queue" `Quick test_equiv_queue_order_matters;
    Alcotest.test_case "run responses" `Quick test_run_responses;
    Alcotest.test_case "request gen" `Quick test_request_gen;
  ]
