(* The composition machinery itself: the Outcome combinator, module-order
   variations (Section 6.3: "the above modules have the property that they
   can be composed in any order"), and interpretation checking of traces
   WITH init events — the composition side of Definition 2. *)

open Scs_spec
open Scs_history
open Scs_sim
open Scs_composable

(* ---- the Outcome combinator ------------------------------------------- *)

let const_module name outcome =
  { Outcome.m_name = name; m_apply = (fun ~pid:_ ?init:_ _req -> outcome) }

let test_compose_commit_short_circuits () =
  let a = const_module "a" (Outcome.Commit "from-a") in
  let b = const_module "b" (Outcome.Commit "from-b") in
  let m = Outcome.compose a b in
  Alcotest.(check string) "name" "a>b" m.Outcome.m_name;
  Alcotest.(check bool) "a answers" true
    (m.Outcome.m_apply ~pid:0 () = Outcome.Commit "from-a")

let test_compose_abort_switches () =
  let got_init = ref None in
  let a = const_module "a" (Outcome.Abort 42) in
  let b =
    {
      Outcome.m_name = "b";
      m_apply =
        (fun ~pid:_ ?init _req ->
          got_init := init;
          Outcome.Commit "from-b");
    }
  in
  let m = Outcome.compose a b in
  Alcotest.(check bool) "b answers" true
    (m.Outcome.m_apply ~pid:0 () = Outcome.Commit "from-b");
  Alcotest.(check (option int)) "switch value delivered" (Some 42) !got_init

let test_chain_propagates () =
  let a = const_module "a" (Outcome.Abort 1) in
  let b = const_module "b" (Outcome.Abort 2) in
  let c = const_module "c" (Outcome.Commit "done") in
  let m = Outcome.chain [ a; b; c ] in
  Alcotest.(check bool) "chain commits at the end" true
    (m.Outcome.m_apply ~pid:0 () = Outcome.Commit "done");
  let all_abort = Outcome.chain [ a; b ] in
  Alcotest.(check bool) "chain abort propagates" true
    (all_abort.Outcome.m_apply ~pid:0 () = Outcome.Abort 2)

let test_chain_empty_rejected () =
  Alcotest.check_raises "empty chain" (Invalid_argument "Outcome.chain: empty module list")
    (fun () -> ignore (Outcome.chain ([] : (unit, unit, unit) Outcome.m list)))

let test_outcome_helpers () =
  Alcotest.(check bool) "is_commit" true (Outcome.is_commit (Outcome.Commit 1));
  Alcotest.(check bool) "is_abort" true (Outcome.is_abort (Outcome.Abort 1));
  Alcotest.(check int) "commit_exn" 5 (Outcome.commit_exn (Outcome.Commit 5));
  Alcotest.check_raises "commit_exn on abort"
    (Invalid_argument "Outcome.commit_exn: outcome is an abort") (fun () ->
      ignore (Outcome.commit_exn (Outcome.Abort 0)));
  Alcotest.(check bool) "map_commit" true
    (Outcome.map_commit (( + ) 1) (Outcome.Commit 1) = Outcome.Commit 2)

(* ---- module order variations ------------------------------------------ *)

type order = A2_first | A1_twice_then_a2 | Strict_then_a2

let run_order ~order ~n ~seed =
  let sim = Sim.create ~n () in
  let module P = (val Scs_prims.Sim_prims.make sim) in
  let module A1 = Scs_tas.A1.Make (P) in
  let module A2 = Scs_tas.A2.Make (P) in
  let tr = Trace.create ~clock:(fun () -> Sim.clock sim) () in
  let m =
    match order with
    | A2_first ->
        (* A2 never aborts, so the A1 tail is dead code — still a legal
           composition per Section 6.3 *)
        Outcome.chain [ A2.as_module (A2.create ~name:"a2" ()); A1.as_module (A1.create ~name:"a1" ()) ]
    | A1_twice_then_a2 ->
        Outcome.chain
          [
            A1.as_module (A1.create ~name:"x" ());
            A1.as_module (A1.create ~name:"y" ());
            A2.as_module (A2.create ~name:"z" ());
          ]
    | Strict_then_a2 ->
        Outcome.chain
          [
            A1.as_module (A1.create ~strict:true ~name:"s" ());
            A2.as_module (A2.create ~name:"z" ());
          ]
  in
  for pid = 0 to n - 1 do
    Sim.spawn sim pid (fun () ->
        let req = Request.make pid Objects.Test_and_set in
        Trace.invoke tr ~pid req;
        match m.Outcome.m_apply ~pid Objects.Test_and_set with
        | Outcome.Commit r -> Trace.commit tr ~pid req r
        | Outcome.Abort _ -> Alcotest.fail "wait-free chain aborted")
  done;
  Sim.run sim (Policy.random (Scs_util.Rng.create seed));
  Trace.events tr

let test_a2_first_linearizable () =
  for seed = 1 to 60 do
    let evs = run_order ~order:A2_first ~n:4 ~seed in
    if not (Tas_lin.check_one_shot (Trace.operations evs)) then
      Alcotest.failf "A2-first not linearizable at seed %d" seed
  done

let test_a1_twice_interpretable () =
  (* the deeper chain keeps the paper's (speculative) correctness notion *)
  for seed = 1 to 60 do
    let evs = run_order ~order:A1_twice_then_a2 ~n:4 ~seed in
    (match Tas_interp.check_events evs with
    | Ok () -> ()
    | Error e -> Alcotest.failf "A1.A1.A2 at seed %d: %s" seed e);
    let winners =
      Trace.operations evs
      |> List.filter (fun (o : _ Trace.operation) ->
             match o.Trace.outcome with
             | Trace.Committed { resp = Objects.Winner; _ } -> true
             | _ -> false)
    in
    Alcotest.(check int) "one winner" 1 (List.length winners)
  done

let test_strict_chain_linearizable () =
  for seed = 1 to 100 do
    let evs = run_order ~order:Strict_then_a2 ~n:5 ~seed in
    if not (Tas_lin.check_one_shot (Trace.operations evs)) then
      Alcotest.failf "strict chain not linearizable at seed %d" seed
  done

(* ---- interpretation of traces with inits ------------------------------- *)

(* an A1-as-second-module trace: the first module's aborts initialise it *)
let test_a1_with_inits_interpretable () =
  for seed = 1 to 80 do
    let n = 3 in
    let sim = Sim.create ~n () in
    let module P = (val Scs_prims.Sim_prims.make sim) in
    let module A1 = Scs_tas.A1.Make (P) in
    let first = A1.create ~name:"first" () in
    let second = A1.create ~name:"second" () in
    let tr2 = Trace.create ~clock:(fun () -> Sim.clock sim) () in
    for pid = 0 to n - 1 do
      Sim.spawn sim pid (fun () ->
          let req = Request.make pid Objects.Test_and_set in
          match A1.apply first ~pid None with
          | Outcome.Commit _ -> ()
          | Outcome.Abort v -> (
              (* module 2's trace starts with an init event *)
              Trace.init tr2 ~pid req v;
              match A1.apply second ~pid (Some v) with
              | Outcome.Commit r -> Trace.commit tr2 ~pid req r
              | Outcome.Abort v' -> Trace.abort tr2 ~pid req v'))
    done;
    Sim.run sim (Policy.random (Scs_util.Rng.create seed));
    let evs = Trace.events tr2 in
    if Array.length evs > 0 then begin
      match Tas_interp.check_events evs with
      | Ok () -> ()
      | Error e -> Alcotest.failf "init-bearing A1 trace at seed %d: %s" seed e
    end
  done

let tests =
  [
    Alcotest.test_case "compose: commit short-circuits" `Quick test_compose_commit_short_circuits;
    Alcotest.test_case "compose: abort switches with value" `Quick test_compose_abort_switches;
    Alcotest.test_case "chain: propagation" `Quick test_chain_propagates;
    Alcotest.test_case "chain: empty rejected" `Quick test_chain_empty_rejected;
    Alcotest.test_case "outcome helpers" `Quick test_outcome_helpers;
    Alcotest.test_case "A2-first order linearizable" `Quick test_a2_first_linearizable;
    Alcotest.test_case "A1.A1.A2 interpretable, one winner" `Quick test_a1_twice_interpretable;
    Alcotest.test_case "strict.A2 chain linearizable" `Quick test_strict_chain_linearizable;
    Alcotest.test_case "A1-with-inits traces interpretable" `Quick
      test_a1_with_inits_interpretable;
  ]
