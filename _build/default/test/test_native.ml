(* The native OCaml 5 backend: the same algorithm functors running on
   [Atomic] under real [Domain] parallelism. Safety properties that can be
   checked without a global clock: winner uniqueness, lock mutual
   exclusion, counter exactness. *)

open Scs_spec
module P = Scs_prims.Native_prims
module OS = Scs_tas.One_shot.Make (P)
module LL = Scs_tas.Long_lived.Make (P)
module B = Scs_tas.Baselines.Make (P)
module L = Scs_tas.Locks.Make (P)

let n_domains = 4

let spawn_all f =
  let domains = List.init n_domains (fun pid -> Domain.spawn (fun () -> f pid)) in
  List.map Domain.join domains

let test_one_shot_unique_winner () =
  for _ = 1 to 50 do
    let os = OS.create ~name:"t" () in
    let results = spawn_all (fun pid -> OS.test_and_set os ~pid) in
    let winners = List.filter (fun r -> r = Objects.Winner) results in
    Alcotest.(check int) "exactly one winner" 1 (List.length winners)
  done

let test_one_shot_strict_unique_winner () =
  for _ = 1 to 50 do
    let os = OS.create ~strict:true ~name:"t" () in
    let results = spawn_all (fun pid -> OS.test_and_set os ~pid) in
    let winners = List.filter (fun r -> r = Objects.Winner) results in
    Alcotest.(check int) "exactly one winner" 1 (List.length winners)
  done

let test_long_lived_round_winners () =
  let iters = 20 in
  (* every iteration of every domain may win and reset *)
  let rounds = (n_domains * iters) + 2 in
  let ll = LL.create ~name:"ll" ~rounds () in
  let per_round = Array.make rounds 0 in
  let mutex = Mutex.create () in
  let _ =
    spawn_all (fun pid ->
        let h = LL.handle ll ~pid in
        for _ = 1 to iters do
          let resp, _, round = LL.test_and_set_info h in
          if resp = Objects.Winner then begin
            Mutex.lock mutex;
            per_round.(round) <- per_round.(round) + 1;
            Mutex.unlock mutex;
            LL.reset h
          end
        done)
  in
  Array.iteri
    (fun i w -> if w > 1 then Alcotest.failf "round %d has %d winners" i w)
    per_round

let test_tournament_unique_winner () =
  for seed = 1 to 50 do
    let t = B.Tournament.create ~name:"agtv" ~n:n_domains () in
    let results =
      spawn_all (fun pid ->
          B.Tournament.test_and_set t ~pid ~rng:(Scs_util.Rng.create ((seed * 17) + pid)))
    in
    let winners = List.filter (fun r -> r = Objects.Winner) results in
    Alcotest.(check int) "exactly one winner" 1 (List.length winners)
  done

let test_speculative_lock_counter () =
  let lock = L.Speculative.create ~name:"l" ~rounds:100_000 () in
  let counter = ref 0 in
  let iters = 300 in
  let _ =
    spawn_all (fun pid ->
        let h = L.Speculative.handle lock ~pid in
        for _ = 1 to iters do
          L.Speculative.acquire h;
          (* non-atomic increment guarded by the lock *)
          counter := !counter + 1;
          L.Speculative.release h
        done)
  in
  Alcotest.(check int) "no lost updates" (n_domains * iters) !counter

let test_ttas_lock_counter () =
  let lock = L.Ttas.create ~name:"l" () in
  let counter = ref 0 in
  let iters = 300 in
  let _ =
    spawn_all (fun pid ->
        ignore pid;
        for _ = 1 to iters do
          L.Ttas.acquire lock;
          counter := !counter + 1;
          L.Ttas.release lock
        done)
  in
  Alcotest.(check int) "no lost updates" (n_domains * iters) !counter

let test_native_prims_semantics () =
  let t = P.tas_obj ~name:"t" () in
  Alcotest.(check bool) "first tas wins" true (P.test_and_set t);
  Alcotest.(check bool) "second loses" false (P.test_and_set t);
  P.tas_reset t;
  Alcotest.(check bool) "wins after reset" true (P.test_and_set t);
  let f = P.fai_obj ~name:"f" 3 in
  Alcotest.(check int) "fai returns old" 3 (P.fetch_and_inc f);
  Alcotest.(check int) "fai incremented" 4 (P.fai_read f);
  let c = P.cas_obj ~name:"c" None in
  Alcotest.(check bool) "cas succeeds" true (P.compare_and_swap c ~expect:None ~update:(Some 1));
  Alcotest.(check bool) "cas fails" false (P.compare_and_swap c ~expect:None ~update:(Some 2))

let tests =
  [
    Alcotest.test_case "native prims semantics" `Quick test_native_prims_semantics;
    Alcotest.test_case "one-shot unique winner (4 domains)" `Quick test_one_shot_unique_winner;
    Alcotest.test_case "strict one-shot unique winner (4 domains)" `Quick
      test_one_shot_strict_unique_winner;
    Alcotest.test_case "long-lived round winners (4 domains)" `Quick
      test_long_lived_round_winners;
    Alcotest.test_case "tournament unique winner (4 domains)" `Quick
      test_tournament_unique_winner;
    Alcotest.test_case "speculative lock counter (4 domains)" `Quick
      test_speculative_lock_counter;
    Alcotest.test_case "ttas lock counter (4 domains)" `Quick test_ttas_lock_counter;
  ]
