(* Tests for the deterministic simulator: scheduling, accounting,
   contention detection, crash injection, exhaustive exploration. *)

open Scs_util
open Scs_sim

let test_solo_run () =
  let sim = Sim.create ~n:2 () in
  let r = Sim.reg sim ~name:"r" 0 in
  let done0 = ref false in
  Sim.spawn sim 0 (fun () ->
      Sim.write r 41;
      let v = Sim.read r in
      Sim.write r (v + 1);
      done0 := true);
  Sim.spawn sim 1 (fun () -> Sim.write r 0);
  Sim.run sim (Policy.solo 0);
  Alcotest.(check bool) "p0 finished" true !done0;
  Alcotest.(check bool) "p1 never ran" true (Sim.is_runnable sim 1);
  Alcotest.(check int) "p0 steps" 3 (Sim.steps_of sim 0);
  Alcotest.(check int) "p1 steps" 0 (Sim.steps_of sim 1)

let test_round_robin_interleaves () =
  let sim = Sim.create ~n:2 () in
  let r = Sim.reg sim ~name:"r" [] in
  let log = ref [] in
  let proc pid () =
    for _ = 1 to 3 do
      let v = Sim.read r in
      Sim.write r (pid :: v);
      log := pid :: !log
    done
  in
  Sim.spawn sim 0 (proc 0);
  Sim.spawn sim 1 (proc 1);
  Sim.run sim (Policy.round_robin ());
  Alcotest.(check bool) "both done" true (Sim.all_done sim);
  Alcotest.(check int) "total steps" 12 (Sim.total_steps sim)

let test_register_semantics () =
  let sim = Sim.create ~n:1 () in
  let r = Sim.reg sim ~name:"r" "init" in
  let seen = ref [] in
  Sim.spawn sim 0 (fun () ->
      seen := Sim.read r :: !seen;
      Sim.write r "x";
      seen := Sim.read r :: !seen);
  Sim.run sim (Policy.round_robin ());
  Alcotest.(check (list string)) "reads" [ "x"; "init" ] !seen

let test_tas_semantics () =
  let sim = Sim.create ~n:1 () in
  let t = Sim.tas_obj sim ~name:"t" () in
  let results = ref [] in
  Sim.spawn sim 0 (fun () ->
      results := Sim.test_and_set t :: !results;
      results := Sim.test_and_set t :: !results;
      Sim.tas_reset t;
      results := Sim.test_and_set t :: !results);
  Sim.run sim (Policy.round_robin ());
  Alcotest.(check (list bool)) "tas semantics" [ true; false; true ] !results

let test_cas_semantics () =
  let sim = Sim.create ~n:1 () in
  let c = Sim.cas_obj sim ~name:"c" None in
  let results = ref [] in
  Sim.spawn sim 0 (fun () ->
      let some1 = Some 1 in
      results := Sim.compare_and_swap c ~expect:None ~update:some1 :: !results;
      results := Sim.compare_and_swap c ~expect:None ~update:(Some 2) :: !results;
      results := Sim.compare_and_swap c ~expect:some1 ~update:(Some 3) :: !results);
  Sim.run sim (Policy.round_robin ());
  Alcotest.(check (list bool)) "cas semantics" [ true; false; true ] !results

let test_fai_semantics () =
  let sim = Sim.create ~n:1 () in
  let f = Sim.fai_obj sim ~name:"f" 5 in
  let results = ref [] in
  Sim.spawn sim 0 (fun () ->
      results := Sim.fetch_and_inc f :: !results;
      results := Sim.fetch_and_inc f :: !results;
      results := Sim.fai_read f :: !results);
  Sim.run sim (Policy.round_robin ());
  Alcotest.(check (list int)) "fai" [ 7; 6; 5 ] !results

let test_fence_accounting () =
  let sim = Sim.create ~n:1 () in
  let r = Sim.reg sim ~name:"r" 0 in
  let t = Sim.tas_obj sim ~name:"t" () in
  Sim.spawn sim 0 (fun () ->
      Sim.write r 1;
      (* write *)
      ignore (Sim.read r);
      (* read-after-write: 1 RAW *)
      ignore (Sim.read r);
      (* clean read: no fence *)
      Sim.write r 2;
      ignore (Sim.test_and_set t);
      (* RMW clears the dirty bit: 1 AWAR *)
      ignore (Sim.read r)
      (* read after rmw: no RAW *));
  Sim.run sim (Policy.round_robin ());
  Alcotest.(check int) "raw fences" 1 (Sim.raw_fences_of sim 0);
  Alcotest.(check int) "rmws" 1 (Sim.rmws_of sim 0)

let test_crash () =
  let sim = Sim.create ~n:2 () in
  let r = Sim.reg sim ~name:"r" 0 in
  let p1_done = ref false in
  Sim.spawn sim 0 (fun () ->
      for i = 1 to 10 do
        Sim.write r i
      done);
  Sim.spawn sim 1 (fun () ->
      Sim.write r 100;
      p1_done := true);
  let policy = Policy.with_crashes [ (0, 3) ] (Policy.round_robin ()) in
  Sim.run sim policy;
  Alcotest.(check bool) "p1 completed" true !p1_done;
  Alcotest.(check bool) "p0 crashed" true (Sim.finished sim 0);
  Alcotest.(check bool) "p0 stopped at 3" true (Sim.steps_of sim 0 <= 4)

let test_livelock_guard () =
  let sim = Sim.create ~max_steps:100 ~n:1 () in
  let r = Sim.reg sim ~name:"r" 0 in
  Sim.spawn sim 0 (fun () ->
      while true do
        ignore (Sim.read r)
      done);
  Alcotest.check_raises "livelock" (Sim.Livelock "step budget 100 exhausted at clock 101")
    (fun () -> Sim.run sim (Policy.round_robin ()))

let test_process_failure_propagates () =
  let sim = Sim.create ~n:1 () in
  let r = Sim.reg sim ~name:"r" 0 in
  Sim.spawn sim 0 (fun () ->
      ignore (Sim.read r);
      failwith "boom");
  (match Sim.run sim (Policy.round_robin ()) with
  | () -> Alcotest.fail "expected Process_failure"
  | exception Sim.Process_failure (0, Failure msg) ->
      Alcotest.(check string) "message" "boom" msg
  | exception e -> raise e);
  Alcotest.(check bool) "done" true (Sim.all_done sim)

let test_scripted_policy () =
  let sim = Sim.create ~n:2 () in
  let r = Sim.reg sim ~name:"r" [] in
  let proc pid () =
    let v = Sim.read r in
    Sim.write r (pid :: v)
  in
  Sim.spawn sim 0 (proc 0);
  Sim.spawn sim 1 (proc 1);
  (* first turn only sets up the first op; steps happen on later turns *)
  Sim.run sim (Policy.scripted [| 0; 1; 0; 0; 1; 1 |]);
  Alcotest.(check bool) "all done" true (Sim.all_done sim)

let test_sequential_policy () =
  let sim = Sim.create ~n:3 () in
  let r = Sim.reg sim ~name:"r" [] in
  let proc pid () =
    let v = Sim.read r in
    Sim.write r (pid :: v)
  in
  for i = 0 to 2 do
    Sim.spawn sim i (proc i)
  done;
  Sim.run sim (Policy.sequential ());
  Alcotest.(check bool) "done" true (Sim.all_done sim);
  Alcotest.(check int) "steps" 6 (Sim.total_steps sim)

let test_trace_recording () =
  let sim = Sim.create ~n:1 () in
  Sim.set_trace sim true;
  let r = Sim.reg sim ~name:"myreg" 0 in
  Sim.spawn sim 0 (fun () ->
      Sim.write r 1;
      ignore (Sim.read r));
  Sim.run sim (Policy.round_robin ());
  let tr = Sim.trace sim in
  Alcotest.(check int) "two events" 2 (List.length tr);
  match tr with
  | [ e1; e2 ] ->
      Alcotest.(check string) "name" "myreg" e1.Mem_event.obj_name;
      Alcotest.(check bool) "kinds" true
        (e1.Mem_event.kind = Op.Write && e2.Mem_event.kind = Op.Read)
  | _ -> Alcotest.fail "unexpected trace"

let test_object_census () =
  let sim = Sim.create ~n:1 () in
  ignore (Sim.reg sim ~name:"a" 0);
  ignore (Sim.reg sim ~name:"b" 0);
  ignore (Sim.tas_obj sim ~name:"t" ());
  ignore (Sim.cas_obj sim ~name:"c" 0);
  Alcotest.(check int) "objects" 4 (Sim.objects_allocated sim);
  Alcotest.(check int) "rmw objects" 2 (Sim.rmw_objects_allocated sim)

let test_detect_step_contention () =
  let events =
    [|
      { Mem_event.ts = 1; pid = 0; kind = Op.Read; obj = 1; obj_name = "r"; info = "" };
      { Mem_event.ts = 2; pid = 1; kind = Op.Read; obj = 1; obj_name = "r"; info = "" };
      { Mem_event.ts = 3; pid = 0; kind = Op.Write; obj = 1; obj_name = "r"; info = "" };
    |]
  in
  let iv = { Detect.pid = 0; start_ts = 0; end_ts = 3 } in
  Alcotest.(check bool) "contended" true (Detect.step_contended events iv);
  let iv_solo = { Detect.pid = 0; start_ts = 2; end_ts = 3 } in
  Alcotest.(check bool) "not contended" false (Detect.step_contended events iv_solo)

let test_detect_overlap () =
  let a = { Detect.pid = 0; start_ts = 0; end_ts = 5 } in
  let b = { Detect.pid = 1; start_ts = 4; end_ts = 9 } in
  let c = { Detect.pid = 1; start_ts = 5; end_ts = 9 } in
  Alcotest.(check bool) "overlap" true (Detect.overlap a b);
  Alcotest.(check bool) "touching intervals do not overlap" false (Detect.overlap a c);
  Alcotest.(check bool) "same pid never overlaps" false
    (Detect.overlap a { Detect.pid = 0; start_ts = 0; end_ts = 9 })

let test_explore_counts_interleavings () =
  (* two processes, one memory op each: exactly C(2,1) = 2 schedules *)
  let setup sim =
    let r = Sim.reg sim ~name:"r" 0 in
    Sim.spawn sim 0 (fun () -> Sim.write r 1);
    Sim.spawn sim 1 (fun () -> Sim.write r 2)
  in
  let outcome = Explore.exhaustive ~n:2 ~setup ~check:(fun _ _ -> ()) () in
  (* each process takes 2 turns (setup + op), schedules = interleavings of
     [0;0] and [1;1] = C(4,2) = 6 *)
  Alcotest.(check bool) "explored several" true (outcome.Explore.schedules >= 2);
  Alcotest.(check bool) "not truncated" false outcome.Explore.truncated

let test_explore_finds_race () =
  (* a classic lost-update race must be exhibited by some interleaving *)
  let results = Array.make 2 0 in
  let setup sim =
    Array.fill results 0 2 0;
    let r = Sim.reg sim ~name:"r" 0 in
    let incr_proc pid () =
      let v = Sim.read r in
      Sim.write r (v + 1);
      results.(pid) <- v + 1
    in
    Sim.spawn sim 0 (incr_proc 0);
    Sim.spawn sim 1 (incr_proc 1)
  in
  let lost = ref 0 and clean = ref 0 in
  let check _ _ = if results.(0) = results.(1) then incr lost else incr clean in
  let outcome = Explore.exhaustive ~n:2 ~setup ~check () in
  Alcotest.(check bool) "explored all" false outcome.Explore.truncated;
  Alcotest.(check bool) "race exhibited" true (!lost > 0);
  Alcotest.(check bool) "clean schedules too" true (!clean > 0)

let test_random_runs_deterministic () =
  let trace1 = ref [] and trace2 = ref [] in
  let mk target =
    let setup sim =
      let r = Sim.reg sim ~name:"r" 0 in
      for pid = 0 to 1 do
        Sim.spawn sim pid (fun () ->
            let v = Sim.read r in
            Sim.write r (v + 1))
      done
    in
    Explore.random_runs ~runs:5 ~seed:123 ~n:2 ~setup
      ~check:(fun sim -> target := Sim.total_steps sim :: !target)
      ()
  in
  mk trace1;
  mk trace2;
  Alcotest.(check (list int)) "deterministic" !trace1 !trace2

let test_sticky_policy_runs () =
  let rng = Rng.create 5 in
  let sim = Sim.create ~n:3 () in
  let r = Sim.reg sim ~name:"r" 0 in
  for pid = 0 to 2 do
    Sim.spawn sim pid (fun () ->
        for _ = 1 to 5 do
          let v = Sim.read r in
          Sim.write r (v + 1)
        done)
  done;
  Sim.run sim (Policy.sticky rng ~switch_prob:0.3);
  Alcotest.(check bool) "all done" true (Sim.all_done sim);
  Alcotest.(check int) "steps" 30 (Sim.total_steps sim)

let test_swap_semantics () =
  let sim = Sim.create ~n:1 () in
  let s = Sim.swap_obj sim ~name:"s" 0 in
  let results = ref [] in
  Sim.spawn sim 0 (fun () ->
      results := Sim.swap s 1 :: !results;
      results := Sim.swap s 2 :: !results;
      results := Sim.swap_read s :: !results);
  Sim.run sim (Policy.round_robin ());
  Alcotest.(check (list int)) "swap returns old" [ 2; 1; 0 ] !results;
  Alcotest.(check int) "swap counted as RMW" 2 (Sim.rmws_of sim 0);
  Alcotest.(check int) "swap obj in census" 1 (Sim.rmw_objects_allocated sim)

let test_weighted_policy () =
  let rng = Rng.create 3 in
  let sim = Sim.create ~n:3 () in
  let r = Sim.reg sim ~name:"r" 0 in
  let counts = Array.make 3 0 in
  for pid = 0 to 2 do
    Sim.spawn sim pid (fun () ->
        for _ = 1 to 20 do
          counts.(pid) <- counts.(pid) + 1;
          Sim.write r pid
        done)
  done;
  (* pid 2 has weight zero: it must never run *)
  Sim.run sim (Policy.stop_when Sim.all_done (Policy.weighted rng [| 1.0; 3.0; 0.0 |]));
  Alcotest.(check int) "weight-0 never ran" 0 (Sim.steps_of sim 2);
  Alcotest.(check bool) "others progressed" true (Sim.steps_of sim 0 > 0 && Sim.steps_of sim 1 > 0)

let test_pause_counts_as_turn () =
  let sim = Sim.create ~max_steps:50 ~n:1 () in
  Sim.spawn sim 0 (fun () ->
      for _ = 1 to 5 do
        Sim.pause sim
      done);
  Sim.run sim (Policy.round_robin ());
  Alcotest.(check int) "pauses consumed clock" 5 (Sim.clock sim)

let tests =
  [
    Alcotest.test_case "solo run" `Quick test_solo_run;
    Alcotest.test_case "round robin interleaves" `Quick test_round_robin_interleaves;
    Alcotest.test_case "register semantics" `Quick test_register_semantics;
    Alcotest.test_case "tas semantics" `Quick test_tas_semantics;
    Alcotest.test_case "cas semantics" `Quick test_cas_semantics;
    Alcotest.test_case "fai semantics" `Quick test_fai_semantics;
    Alcotest.test_case "fence accounting" `Quick test_fence_accounting;
    Alcotest.test_case "crash injection" `Quick test_crash;
    Alcotest.test_case "livelock guard" `Quick test_livelock_guard;
    Alcotest.test_case "process failure propagates" `Quick test_process_failure_propagates;
    Alcotest.test_case "scripted policy" `Quick test_scripted_policy;
    Alcotest.test_case "sequential policy" `Quick test_sequential_policy;
    Alcotest.test_case "trace recording" `Quick test_trace_recording;
    Alcotest.test_case "object census" `Quick test_object_census;
    Alcotest.test_case "detect step contention" `Quick test_detect_step_contention;
    Alcotest.test_case "detect overlap" `Quick test_detect_overlap;
    Alcotest.test_case "explore counts interleavings" `Quick test_explore_counts_interleavings;
    Alcotest.test_case "explore exhibits races" `Quick test_explore_finds_race;
    Alcotest.test_case "random runs deterministic" `Quick test_random_runs_deterministic;
    Alcotest.test_case "sticky policy" `Quick test_sticky_policy_runs;
    Alcotest.test_case "swap semantics" `Quick test_swap_semantics;
    Alcotest.test_case "weighted policy" `Quick test_weighted_policy;
    Alcotest.test_case "pause counts as turn" `Quick test_pause_counts_as_turn;
  ]
