(* Verification of the long-lived resettable test-and-set (Algorithm 2,
   Theorem 4): round-by-round linearizability, unique winner per round,
   well-formed reset behaviour, and the Figure 1 back edge (reset returns
   the object to the speculative module). *)

open Scs_spec
open Scs_history
open Scs_sim
open Scs_workload

let test_rounds_unique_winner () =
  for seed = 1 to 60 do
    let r = Tas_run.long_lived ~seed ~n:4 ~ops_per_proc:4 ~policy:Policy.random () in
    let per_round = Hashtbl.create 8 in
    List.iter
      (fun (op : Tas_run.op_record) ->
        if op.Tas_run.resp = Objects.Winner then begin
          let c = Option.value ~default:0 (Hashtbl.find_opt per_round op.Tas_run.round) in
          Hashtbl.replace per_round op.Tas_run.round (c + 1)
        end)
      r.Tas_run.ops;
    Hashtbl.iter
      (fun round w ->
        if w > 1 then Alcotest.failf "round %d has %d winners at seed %d" round w seed)
      per_round
  done

let test_rounds_linearizable_strict () =
  (* a round accumulates up to n*ops participants (losers retry in the
     same round), so the Finding F-1 counterexample is reachable even at
     n = 3 for the paper-faithful variant; the strict variant must be
     linearizable round by round *)
  for seed = 1 to 60 do
    let r = Tas_run.long_lived ~strict:true ~seed ~n:4 ~ops_per_proc:4 ~policy:Policy.random () in
    if not (Tas_lin.check_long_lived ~rounds:(Tas_run.rounds_of r)) then
      Alcotest.failf "strict long-lived run not linearizable at seed %d" seed
  done

let test_rounds_paper_variant_can_violate () =
  (* documents Finding F-1 at the long-lived level *)
  let violated = ref false in
  for seed = 1 to 60 do
    let r = Tas_run.long_lived ~seed ~n:3 ~ops_per_proc:4 ~policy:Policy.random () in
    if not (Tas_lin.check_long_lived ~rounds:(Tas_run.rounds_of r)) then violated := true
  done;
  Alcotest.(check bool) "paper variant violates strict linearizability" true !violated

let test_round_advances_only_on_win () =
  let r = Tas_run.long_lived ~n:3 ~ops_per_proc:3 ~policy:(fun _ -> Policy.sequential ()) () in
  (* sequential: p0 wins round 0, resets; wins round 1, resets; ... then
     p1 wins rounds 3.., etc. Every op's round must equal the number of
     wins recorded before it. *)
  let wins = ref 0 in
  List.iter
    (fun (op : Tas_run.op_record) ->
      Alcotest.(check int) "round = wins so far" !wins op.Tas_run.round;
      if op.Tas_run.resp = Objects.Winner then incr wins)
    r.Tas_run.ops;
  Alcotest.(check int) "every op won sequentially" 9 !wins

let test_reset_by_loser_is_noop () =
  let sim = Sim.create ~n:2 () in
  let module P = (val Scs_prims.Sim_prims.make sim) in
  let module LL = Scs_tas.Long_lived.Make (P) in
  let ll = LL.create ~name:"ll" ~rounds:4 () in
  let rounds_seen = ref [] in
  Sim.spawn sim 0 (fun () ->
      let h = LL.handle ll ~pid:0 in
      let resp, _, round = LL.test_and_set_info h in
      rounds_seen := (0, round, resp) :: !rounds_seen;
      LL.reset h;
      (* winner reset: round advances *)
      let _, _, round' = LL.test_and_set_info h in
      rounds_seen := (0, round', Objects.Loser) :: !rounds_seen);
  Sim.spawn sim 1 (fun () ->
      let h = LL.handle ll ~pid:1 in
      let resp, _, round = LL.test_and_set_info h in
      rounds_seen := (1, round, resp) :: !rounds_seen;
      (* loser reset must not advance the round *)
      LL.reset h;
      let _, _, round' = LL.test_and_set_info h in
      rounds_seen := (1, round', Objects.Loser) :: !rounds_seen);
  Sim.run sim (Policy.sequential ());
  match List.rev !rounds_seen with
  | [ (0, 0, Objects.Winner); (0, 1, _); (1, 1, w1); (1, r1', _) ] ->
      (* p1 participates in round 1 (p0 won round 0 and reset, then p0's
         second op won round 1); p1 loses and its reset is a no-op *)
      Alcotest.(check bool) "p1 lost round 1" true (w1 = Objects.Loser);
      Alcotest.(check int) "loser reset no-op" 1 r1'
  | _ -> Alcotest.fail "unexpected round structure"

let test_back_edge_to_speculation () =
  (* after the hardware module was used under contention, a reset brings
     the next round back to the register-only fast path *)
  let sim = Sim.create ~n:2 () in
  let module P = (val Scs_prims.Sim_prims.make sim) in
  let module LL = Scs_tas.Long_lived.Make (P) in
  let ll = LL.create ~name:"ll" ~rounds:8 () in
  let stages = ref [] in
  (* interleave two processes tightly so round 0 falls back to hardware *)
  Sim.spawn sim 0 (fun () ->
      let h = LL.handle ll ~pid:0 in
      let resp, stage, round = LL.test_and_set_info h in
      stages := (round, stage, resp) :: !stages;
      if resp = Objects.Winner then LL.reset h;
      let resp2, stage2, round2 = LL.test_and_set_info h in
      stages := (round2, stage2, resp2) :: !stages;
      if resp2 = Objects.Winner then LL.reset h);
  Sim.spawn sim 1 (fun () ->
      let h = LL.handle ll ~pid:1 in
      let resp, stage, round = LL.test_and_set_info h in
      stages := (round, stage, resp) :: !stages);
  (* strict alternation long enough to force interference in round 0 *)
  Sim.run sim
    (Policy.scripted_then
       [| 0; 1; 0; 1; 0; 1; 0; 1; 0; 1; 0; 1; 0; 1; 0; 1 |]
       (Policy.sequential ()));
  let fell_back_round0 =
    List.exists (fun (r, s, _) -> r = 0 && s = Scs_tas.One_shot.Fallback) !stages
  in
  let fast_later =
    List.exists (fun (r, s, _) -> r > 0 && s = Scs_tas.One_shot.Fast) !stages
  in
  Alcotest.(check bool) "round 0 used hardware" true fell_back_round0;
  Alcotest.(check bool) "later round back on registers" true fast_later

let test_uncontended_cycle_cost_constant () =
  (* winner's TAS + reset cycle cost is constant and RMW-free when alone *)
  let r = Tas_run.long_lived ~n:1 ~ops_per_proc:8 ~policy:(fun _ -> Policy.sequential ()) () in
  List.iter
    (fun (op : Tas_run.op_record) ->
      Alcotest.(check bool) "winner" true (op.Tas_run.resp = Objects.Winner);
      Alcotest.(check int) "rmw-free" 0 op.Tas_run.rmws;
      (* count read + 9 A1 steps *)
      Alcotest.(check int) "constant steps" 10 op.Tas_run.steps)
    r.Tas_run.ops

let test_crashed_winner_blocks_round_but_safety_holds () =
  (* if the winner crashes before resetting, the round never advances;
     remaining processes keep losing (liveness of reset is the winner's
     obligation — well-formedness), but safety is preserved *)
  let r =
    Tas_run.long_lived ~n:3 ~ops_per_proc:2
      ~crashes:[ (0, 12) ]
      ~policy:(fun _ -> Policy.sequential ())
      ()
  in
  let winners = List.filter (fun (o : Tas_run.op_record) -> o.Tas_run.resp = Objects.Winner) r.Tas_run.ops in
  let winner_rounds = List.map (fun (o : Tas_run.op_record) -> o.Tas_run.round) winners in
  let sorted = List.sort_uniq compare winner_rounds in
  Alcotest.(check int) "one winner per round" (List.length winner_rounds) (List.length sorted);
  Alcotest.(check bool) "rounds linearizable" true
    (Tas_lin.check_long_lived ~rounds:(Tas_run.rounds_of r))

let tests =
  [
    Alcotest.test_case "unique winner per round" `Quick test_rounds_unique_winner;
    Alcotest.test_case "rounds linearizable (strict)" `Quick test_rounds_linearizable_strict;
    Alcotest.test_case "paper variant can violate (F-1)" `Quick
      test_rounds_paper_variant_can_violate;
    Alcotest.test_case "round advances only on win" `Quick test_round_advances_only_on_win;
    Alcotest.test_case "loser reset is no-op" `Quick test_reset_by_loser_is_noop;
    Alcotest.test_case "reset returns to speculation (Fig 1 back edge)" `Quick
      test_back_edge_to_speculation;
    Alcotest.test_case "uncontended cycle cost constant" `Quick
      test_uncontended_cycle_cost_constant;
    Alcotest.test_case "crashed winner: safety holds" `Quick
      test_crashed_winner_blocks_round_but_safety_holds;
  ]
