test/test_splitter.ml: Alcotest Array Explore List Policy Scs_consensus Scs_prims Scs_sim Sim Splitter
