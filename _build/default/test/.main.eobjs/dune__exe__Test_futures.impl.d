test/test_futures.ml: Alcotest Array Explore Linearize List Objects Option Policy Request Scs_futures Scs_history Scs_prims Scs_sim Scs_spec Scs_util Sim Spec_object Trace
