test/test_universal.ml: Abstract_check Alcotest Array Linearize List Objects Policy Request Scs_consensus Scs_history Scs_prims Scs_sim Scs_spec Scs_universal Scs_util Scs_workload Sim Trace Uc_run
