test/main.mli:
