test/test_history.ml: Abstract_check Alcotest Gen Linearize List Objects QCheck QCheck_alcotest Request Scs_history Scs_spec Tas_lin Trace
