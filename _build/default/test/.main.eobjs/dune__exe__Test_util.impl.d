test/test_util.ml: Alcotest Array Chart List Option Rng Scs_util Stats String Table Vec
