test/test_native.ml: Alcotest Array Domain List Mutex Objects Scs_prims Scs_spec Scs_tas Scs_util
