test/test_long_lived.ml: Alcotest Hashtbl List Objects Option Policy Scs_history Scs_prims Scs_sim Scs_spec Scs_tas Scs_workload Sim Tas_lin Tas_run
