test/test_spec.ml: Alcotest History List Objects Request Scs_spec Spec
