test/test_sim.ml: Alcotest Array Detect Explore List Mem_event Op Policy Rng Scs_sim Scs_util Sim
