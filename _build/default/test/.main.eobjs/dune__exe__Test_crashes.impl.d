test/test_crashes.ml: Alcotest Array List Outcome Policy Scs_composable Scs_consensus Scs_history Scs_prims Scs_sim Scs_spec Scs_universal Scs_util Scs_workload Sim Tas_run Uc_run
