test/test_composition.ml: Alcotest Array List Objects Outcome Policy Request Scs_composable Scs_history Scs_prims Scs_sim Scs_spec Scs_tas Scs_util Sim Tas_interp Tas_lin Trace
