test/test_locks.ml: Alcotest Policy Printf Scs_prims Scs_sim Scs_tas Scs_util Sim
